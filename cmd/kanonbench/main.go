// Command kanonbench regenerates the evaluation of "k-Anonymization
// Revisited": Table I, Figures 2 and 3, and the ablation findings of
// Section VI-A, per the experiment index in DESIGN.md (E1–E13).
//
// Usage:
//
//	kanonbench -exp table1            # default-scale Table I (E1–E6, E12)
//	kanonbench -exp fig2 -full        # Figure 2 at paper scale (E7)
//	kanonbench -exp all -v            # everything, with progress lines
//
// Dataset sizes default to ART 1000 / ADT 2000 / CMC 1473 so the suite
// finishes in minutes; -full switches to paper scale (ART 5000, ADT 5000,
// CMC 1500).
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sync"
	"time"

	"kanon/internal/experiment"
	"kanon/internal/plot"
	"kanon/internal/resilient"
)

func main() {
	var (
		exp     = flag.String("exp", "table1", "experiment: table1, fig2, fig3, distances, modified, k1, global, recoding, queries, diversity, scale, attack, constraints, all")
		full    = flag.Bool("full", false, "paper-scale dataset sizes")
		verify  = flag.Bool("verify", false, "verify every output against the anonymity definitions (slow)")
		verbose = flag.Bool("v", false, "print one line per completed run")
		asJSON  = flag.Bool("json", false, "emit machine-readable JSON instead of formatted text")
		svgDir  = flag.String("svg", "", "also write figure SVGs (fig2.svg, fig3.svg) to this directory")
		seed    = flag.Int64("seed", 42, "dataset generator seed")
		nART    = flag.Int("n-art", 0, "override ART size")
		nADT    = flag.Int("n-adt", 0, "override ADT size")
		nCMC    = flag.Int("n-cmc", 0, "override CMC size")
		workers = flag.Int("workers", 0, "worker pool size for runs and engines (0 = all CPUs, 1 = sequential; results are identical)")
		timeout = flag.Duration("timeout", 0, "abort the suite after this duration (e.g. 10m; 0 = no limit)")
		ckpt    = flag.String("checkpoint", "", "JSONL file persisting each completed run; implies deterministic output (timing fields zeroed)")
		resume  = flag.Bool("resume", false, "skip runs already recorded in the -checkpoint file")
		metrics = flag.Bool("metrics", false, "attach per-run engine metrics (phase walls, counters, peaks) to every output row")
	)
	flag.Parse()

	cfg := experiment.DefaultConfig()
	if *full {
		cfg = experiment.FullConfig()
	}
	cfg.Seed = *seed
	cfg.Verify = *verify
	cfg.Workers = *workers
	cfg.Metrics = *metrics
	if *nART > 0 {
		cfg.NART = *nART
	}
	if *nADT > 0 {
		cfg.NADT = *nADT
	}
	if *nCMC > 0 {
		cfg.NCMC = *nCMC
	}
	if *verbose {
		cfg.Log = os.Stderr
	}
	if *timeout > 0 {
		ctx, cancel := context.WithTimeout(context.Background(), *timeout)
		defer cancel()
		cfg.Ctx = ctx
	}
	if *resume && *ckpt == "" {
		fmt.Fprintln(os.Stderr, "kanonbench: -resume requires -checkpoint")
		os.Exit(2)
	}
	if *ckpt != "" {
		closeCkpt, err := setupCheckpoint(&cfg, *ckpt, *resume)
		if err != nil {
			fmt.Fprintln(os.Stderr, "kanonbench:", err)
			os.Exit(1)
		}
		defer closeCkpt()
	}

	start := time.Now()
	r := &runner{cfg: cfg, blocks: make(map[string]*experiment.Block), svgDir: *svgDir}
	if err := r.run(os.Stdout, *exp, *asJSON); err != nil {
		fmt.Fprintln(os.Stderr, "kanonbench:", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "total time: %v (sizes ART=%d ADT=%d CMC=%d, seed=%d)\n",
		time.Since(start).Round(time.Millisecond), cfg.NART, cfg.NADT, cfg.NCMC, cfg.Seed)
}

// shardLine is the JSONL shape of a shard-granular checkpoint line from a
// partitioned scale run. Run lines stay plain experiment.Run objects; the
// scale_run discriminator never appears in a Run, so a loader can tell the
// two apart from the bytes alone.
type shardLine struct {
	ScaleRun string                    `json:"scale_run"`
	Shard    resilient.ShardCheckpoint `json:"shard"`
}

// setupCheckpoint wires -checkpoint/-resume into the config: completed
// runs — and, for partitioned scale runs, completed shards — are appended
// to path as JSON lines the moment they finish (flushed per line, so a
// kill loses at most the in-flight work), and with resume the work already
// recorded is loaded and skipped. Checkpointing forces Deterministic so a
// resumed suite serializes byte-identically to an uninterrupted one.
func setupCheckpoint(cfg *experiment.Config, path string, resume bool) (func(), error) {
	cfg.Deterministic = true
	if resume {
		completed, shards, valid, err := loadCheckpoint(path)
		if err != nil {
			return nil, err
		}
		if fi, err := os.Stat(path); err == nil && valid < fi.Size() {
			// A torn tail from a mid-write kill: truncate it away so the
			// appends below start on a clean line boundary instead of
			// gluing onto the partial line.
			fmt.Fprintf(os.Stderr, "kanonbench: dropping torn tail of %s (%d bytes)\n", path, fi.Size()-valid)
			if err := os.Truncate(path, valid); err != nil {
				return nil, err
			}
		}
		cfg.Completed = completed
		cfg.CompletedShards = shards
		if len(completed) > 0 || len(shards) > 0 {
			nShards := 0
			for _, m := range shards {
				nShards += len(m)
			}
			fmt.Fprintf(os.Stderr, "resuming: %d runs, %d shards checkpointed in %s\n",
				len(completed), nShards, path)
		}
	} else if _, err := os.Stat(path); err == nil {
		return nil, fmt.Errorf("checkpoint file %s already exists (pass -resume to continue it, or remove it)", path)
	}
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, err
	}
	// OnRun calls are serialized by experiment.Config, and OnShard fires on
	// the sequential shard supervisor, but the two surfaces can interleave
	// in principle — one mutex keeps every Encode an atomic line append.
	var mu sync.Mutex
	enc := json.NewEncoder(f)
	cfg.OnRun = func(r experiment.Run) {
		mu.Lock()
		defer mu.Unlock()
		if err := enc.Encode(r); err != nil {
			fmt.Fprintln(os.Stderr, "kanonbench: checkpoint write:", err)
		}
	}
	cfg.OnShard = func(runKey string, ck resilient.ShardCheckpoint) {
		mu.Lock()
		defer mu.Unlock()
		if err := enc.Encode(shardLine{ScaleRun: runKey, Shard: ck}); err != nil {
			fmt.Fprintln(os.Stderr, "kanonbench: checkpoint write:", err)
		}
	}
	return func() { f.Close() }, nil
}

// loadCheckpoint parses a JSONL checkpoint into a Run map keyed by
// Run.Key() plus a shard map keyed by scale-run key, and returns the byte
// length of the valid prefix (everything before a torn line). A missing
// file is an empty checkpoint; a torn trailing line (from a mid-write
// kill) is dropped with a warning, and the caller truncates it away before
// appending.
func loadCheckpoint(path string) (map[string]experiment.Run, map[string]map[int]resilient.ShardCheckpoint, int64, error) {
	completed := make(map[string]experiment.Run)
	shards := make(map[string]map[int]resilient.ShardCheckpoint)
	data, err := os.ReadFile(path)
	if errors.Is(err, os.ErrNotExist) {
		return completed, shards, 0, nil
	}
	if err != nil {
		return nil, nil, 0, err
	}
	var valid int64
	off, line := 0, 0
	for off < len(data) {
		line++
		end, next := len(data), len(data)
		if nl := bytes.IndexByte(data[off:], '\n'); nl >= 0 {
			end = off + nl
			next = end + 1
		}
		if b := data[off:end]; len(b) > 0 {
			if !parseCheckpointLine(b, completed, shards) {
				fmt.Fprintf(os.Stderr, "kanonbench: checkpoint %s line %d unreadable (torn write?), dropping it and the rest\n", path, line)
				return completed, shards, valid, nil
			}
		}
		off = next
		valid = int64(off)
	}
	return completed, shards, valid, nil
}

// parseCheckpointLine decodes one checkpoint line into the run or shard
// map, reporting whether the line was readable.
func parseCheckpointLine(b []byte, completed map[string]experiment.Run, shards map[string]map[int]resilient.ShardCheckpoint) bool {
	var sl shardLine
	if err := json.Unmarshal(b, &sl); err != nil {
		return false
	}
	if sl.ScaleRun != "" {
		m := shards[sl.ScaleRun]
		if m == nil {
			m = make(map[int]resilient.ShardCheckpoint)
			shards[sl.ScaleRun] = m
		}
		m[sl.Shard.Shard] = sl.Shard
		return true
	}
	var r experiment.Run
	if err := json.Unmarshal(b, &r); err != nil {
		return false
	}
	completed[r.Key()] = r
	return true
}

// runner memoizes dataset × measure blocks so `-exp all` computes each of
// the six expensive blocks exactly once.
type runner struct {
	cfg    experiment.Config
	blocks map[string]*experiment.Block
	svgDir string
}

func (r *runner) block(dataset string, m experiment.MeasureKind) (*experiment.Block, error) {
	key := dataset + "/" + string(m)
	if b, ok := r.blocks[key]; ok {
		return b, nil
	}
	b, err := r.cfg.RunBlock(dataset, m)
	if err != nil {
		return nil, err
	}
	r.blocks[key] = b
	return b, nil
}

func (r *runner) allBlocks() ([]*experiment.Block, error) {
	var out []*experiment.Block
	for _, m := range []experiment.MeasureKind{experiment.EM, experiment.LM} {
		for _, d := range []string{"ART", "ADT", "CMC"} {
			b, err := r.block(d, m)
			if err != nil {
				return nil, err
			}
			out = append(out, b)
		}
	}
	return out, nil
}

// collect runs one experiment and returns both its machine-readable data
// and its formatted text.
func (r *runner) collect(exp string) (interface{}, string, error) {
	switch exp {
	case "table1":
		blocks, err := r.allBlocks()
		if err != nil {
			return nil, "", err
		}
		text := experiment.FormatTableI(blocks) + "\n" + experiment.FormatPerEntrySummary(blocks)
		return blocks, text, nil
	case "fig2", "fig3":
		m := experiment.EM
		if exp == "fig3" {
			m = experiment.LM
		}
		blk, err := r.block("ADT", m)
		if err != nil {
			return nil, "", err
		}
		if r.svgDir != "" {
			if err := writeFigureSVG(r.svgDir, exp, blk); err != nil {
				return nil, "", err
			}
		}
		return blk, experiment.FormatFigureCSV(blk), nil
	case "distances", "modified", "k1":
		blocks, err := r.allBlocks()
		if err != nil {
			return nil, "", err
		}
		var text string
		for _, blk := range blocks {
			switch exp {
			case "distances":
				text += experiment.FormatDistanceAblation(blk) + "\n"
			case "modified":
				text += experiment.FormatModifiedAblation(blk) + "\n"
			case "k1":
				text += experiment.FormatK1Ablation(blk) + "\n"
			}
		}
		return blocks, text, nil
	case "global":
		var all []experiment.GlobalResult
		for _, d := range []string{"ART", "ADT", "CMC"} {
			res, err := r.cfg.RunGlobal(d, experiment.EM, []float64{0.2, 0.5})
			if err != nil {
				return nil, "", err
			}
			all = append(all, res...)
		}
		return all, experiment.FormatGlobal(all), nil
	case "recoding":
		var all []experiment.RecodingResult
		for _, d := range []string{"ART", "ADT", "CMC"} {
			res, err := r.cfg.RunRecoding(d, experiment.EM)
			if err != nil {
				return nil, "", err
			}
			all = append(all, res...)
		}
		return all, experiment.FormatRecoding(all), nil
	case "queries":
		var all []experiment.QueryResult
		for _, d := range []string{"ART", "ADT", "CMC"} {
			res, err := r.cfg.RunQueries(d, 300)
			if err != nil {
				return nil, "", err
			}
			all = append(all, res...)
		}
		return all, experiment.FormatQueries(all), nil
	case "scale":
		sizes := []int{1000, 2000, 4000}
		skipPlainAbove := 4000
		if r.cfg.NADT >= 5000 { // -full
			sizes = []int{1000, 2000, 5000, 10000, 20000}
			skipPlainAbove = 5000
		}
		res, err := r.cfg.RunScale(sizes, 10, 400, skipPlainAbove)
		if err != nil {
			return nil, "", err
		}
		return res, experiment.FormatScale(res), nil
	case "diversity":
		var all []experiment.DiversityResult
		for _, d := range []string{"ART", "ADT", "CMC"} {
			res, err := r.cfg.RunDiversity(d, 2)
			if err != nil {
				return nil, "", err
			}
			all = append(all, res...)
		}
		return all, experiment.FormatDiversity(all), nil
	case "constraints":
		var all []experiment.ConstraintResult
		for _, d := range []string{"ART", "ADT", "CMC"} {
			res, err := r.cfg.RunConstraints(d)
			if err != nil {
				return nil, "", err
			}
			all = append(all, res...)
		}
		return all, experiment.FormatConstraints(all), nil
	case "attack":
		var all []experiment.AttackResult
		for _, d := range []string{"ART", "ADT", "CMC"} {
			res, err := r.cfg.RunAttack(d)
			if err != nil {
				return nil, "", err
			}
			all = append(all, res...)
		}
		return all, experiment.FormatAttack(all), nil
	default:
		return nil, "", fmt.Errorf("unknown experiment %q", exp)
	}
}

// writeFigureSVG renders a figure block as <dir>/<name>.svg, in the style
// of the paper's Figures 2 and 3.
func writeFigureSVG(dir, name string, blk *experiment.Block) error {
	measureLabel := "entropy measure"
	if blk.Measure == experiment.LM {
		measureLabel = "LM measure"
	}
	chart := plot.Chart{
		Title:  fmt.Sprintf("Comparison of algorithms by the %s (%s)", measureLabel, blk.Dataset),
		XLabel: "k",
		YLabel: "Information loss",
	}
	type row struct {
		label  string
		s      experiment.Series
		dashed bool
	}
	for _, rw := range []row{
		{"k-anon.", blk.BestKAnon, false},
		{"forest alg.", blk.Forest, true},
		{"(k,k)-anon.", blk.BestKK, false},
	} {
		var xs, ys []float64
		for _, k := range blk.SortedKs() {
			xs = append(xs, float64(k))
			ys = append(ys, rw.s.Losses[k])
		}
		chart.Series = append(chart.Series, plot.Series{Name: rw.label, X: xs, Y: ys, Dashed: rw.dashed})
	}
	svg, err := chart.SVG()
	if err != nil {
		return err
	}
	return os.WriteFile(filepath.Join(dir, name+".svg"), []byte(svg), 0o644)
}

var allExperiments = []string{
	"table1", "fig2", "fig3", "distances", "modified", "k1",
	"global", "recoding", "queries", "diversity", "scale", "attack",
	"constraints",
}

func (r *runner) run(w io.Writer, exp string, asJSON bool) error {
	names := []string{exp}
	if exp == "all" {
		names = allExperiments
	}
	type envelope struct {
		Experiment string            `json:"experiment"`
		Config     experiment.Config `json:"config"`
		Data       interface{}       `json:"data"`
	}
	var envelopes []envelope
	for _, name := range names {
		data, text, err := r.collect(name)
		if err != nil {
			return err
		}
		if asJSON {
			envelopes = append(envelopes, envelope{Experiment: name, Config: r.cfg, Data: data})
			continue
		}
		if exp == "all" {
			fmt.Fprintf(w, "==== %s ====\n", name)
		}
		fmt.Fprintln(w, text)
	}
	if asJSON {
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		if len(envelopes) == 1 {
			return enc.Encode(envelopes[0])
		}
		return enc.Encode(envelopes)
	}
	return nil
}
