// Command kanonbench regenerates the evaluation of "k-Anonymization
// Revisited": Table I, Figures 2 and 3, and the ablation findings of
// Section VI-A, per the experiment index in DESIGN.md (E1–E13).
//
// Usage:
//
//	kanonbench -exp table1            # default-scale Table I (E1–E6, E12)
//	kanonbench -exp fig2 -full        # Figure 2 at paper scale (E7)
//	kanonbench -exp all -v            # everything, with progress lines
//
// Dataset sizes default to ART 1000 / ADT 2000 / CMC 1473 so the suite
// finishes in minutes; -full switches to paper scale (ART 5000, ADT 5000,
// CMC 1500).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"time"

	"kanon/internal/experiment"
	"kanon/internal/plot"
)

func main() {
	var (
		exp     = flag.String("exp", "table1", "experiment: table1, fig2, fig3, distances, modified, k1, global, recoding, queries, diversity, scale, all")
		full    = flag.Bool("full", false, "paper-scale dataset sizes")
		verify  = flag.Bool("verify", false, "verify every output against the anonymity definitions (slow)")
		verbose = flag.Bool("v", false, "print one line per completed run")
		asJSON  = flag.Bool("json", false, "emit machine-readable JSON instead of formatted text")
		svgDir  = flag.String("svg", "", "also write figure SVGs (fig2.svg, fig3.svg) to this directory")
		seed    = flag.Int64("seed", 42, "dataset generator seed")
		nART    = flag.Int("n-art", 0, "override ART size")
		nADT    = flag.Int("n-adt", 0, "override ADT size")
		nCMC    = flag.Int("n-cmc", 0, "override CMC size")
		workers = flag.Int("workers", 0, "worker pool size for runs and engines (0 = all CPUs, 1 = sequential; results are identical)")
	)
	flag.Parse()

	cfg := experiment.DefaultConfig()
	if *full {
		cfg = experiment.FullConfig()
	}
	cfg.Seed = *seed
	cfg.Verify = *verify
	cfg.Workers = *workers
	if *nART > 0 {
		cfg.NART = *nART
	}
	if *nADT > 0 {
		cfg.NADT = *nADT
	}
	if *nCMC > 0 {
		cfg.NCMC = *nCMC
	}
	if *verbose {
		cfg.Log = os.Stderr
	}

	start := time.Now()
	r := &runner{cfg: cfg, blocks: make(map[string]*experiment.Block), svgDir: *svgDir}
	if err := r.run(os.Stdout, *exp, *asJSON); err != nil {
		fmt.Fprintln(os.Stderr, "kanonbench:", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "total time: %v (sizes ART=%d ADT=%d CMC=%d, seed=%d)\n",
		time.Since(start).Round(time.Millisecond), cfg.NART, cfg.NADT, cfg.NCMC, cfg.Seed)
}

// runner memoizes dataset × measure blocks so `-exp all` computes each of
// the six expensive blocks exactly once.
type runner struct {
	cfg    experiment.Config
	blocks map[string]*experiment.Block
	svgDir string
}

func (r *runner) block(dataset string, m experiment.MeasureKind) (*experiment.Block, error) {
	key := dataset + "/" + string(m)
	if b, ok := r.blocks[key]; ok {
		return b, nil
	}
	b, err := r.cfg.RunBlock(dataset, m)
	if err != nil {
		return nil, err
	}
	r.blocks[key] = b
	return b, nil
}

func (r *runner) allBlocks() ([]*experiment.Block, error) {
	var out []*experiment.Block
	for _, m := range []experiment.MeasureKind{experiment.EM, experiment.LM} {
		for _, d := range []string{"ART", "ADT", "CMC"} {
			b, err := r.block(d, m)
			if err != nil {
				return nil, err
			}
			out = append(out, b)
		}
	}
	return out, nil
}

// collect runs one experiment and returns both its machine-readable data
// and its formatted text.
func (r *runner) collect(exp string) (interface{}, string, error) {
	switch exp {
	case "table1":
		blocks, err := r.allBlocks()
		if err != nil {
			return nil, "", err
		}
		text := experiment.FormatTableI(blocks) + "\n" + experiment.FormatPerEntrySummary(blocks)
		return blocks, text, nil
	case "fig2", "fig3":
		m := experiment.EM
		if exp == "fig3" {
			m = experiment.LM
		}
		blk, err := r.block("ADT", m)
		if err != nil {
			return nil, "", err
		}
		if r.svgDir != "" {
			if err := writeFigureSVG(r.svgDir, exp, blk); err != nil {
				return nil, "", err
			}
		}
		return blk, experiment.FormatFigureCSV(blk), nil
	case "distances", "modified", "k1":
		blocks, err := r.allBlocks()
		if err != nil {
			return nil, "", err
		}
		var text string
		for _, blk := range blocks {
			switch exp {
			case "distances":
				text += experiment.FormatDistanceAblation(blk) + "\n"
			case "modified":
				text += experiment.FormatModifiedAblation(blk) + "\n"
			case "k1":
				text += experiment.FormatK1Ablation(blk) + "\n"
			}
		}
		return blocks, text, nil
	case "global":
		var all []experiment.GlobalResult
		for _, d := range []string{"ART", "ADT", "CMC"} {
			res, err := r.cfg.RunGlobal(d, experiment.EM, []float64{0.2, 0.5})
			if err != nil {
				return nil, "", err
			}
			all = append(all, res...)
		}
		return all, experiment.FormatGlobal(all), nil
	case "recoding":
		var all []experiment.RecodingResult
		for _, d := range []string{"ART", "ADT", "CMC"} {
			res, err := r.cfg.RunRecoding(d, experiment.EM)
			if err != nil {
				return nil, "", err
			}
			all = append(all, res...)
		}
		return all, experiment.FormatRecoding(all), nil
	case "queries":
		var all []experiment.QueryResult
		for _, d := range []string{"ART", "ADT", "CMC"} {
			res, err := r.cfg.RunQueries(d, 300)
			if err != nil {
				return nil, "", err
			}
			all = append(all, res...)
		}
		return all, experiment.FormatQueries(all), nil
	case "scale":
		sizes := []int{1000, 2000, 4000}
		skipPlainAbove := 4000
		if r.cfg.NADT >= 5000 { // -full
			sizes = []int{1000, 2000, 5000, 10000, 20000}
			skipPlainAbove = 5000
		}
		res, err := r.cfg.RunScale(sizes, 10, 400, skipPlainAbove)
		if err != nil {
			return nil, "", err
		}
		return res, experiment.FormatScale(res), nil
	case "diversity":
		var all []experiment.DiversityResult
		for _, d := range []string{"ART", "ADT", "CMC"} {
			res, err := r.cfg.RunDiversity(d, 2)
			if err != nil {
				return nil, "", err
			}
			all = append(all, res...)
		}
		return all, experiment.FormatDiversity(all), nil
	default:
		return nil, "", fmt.Errorf("unknown experiment %q", exp)
	}
}

// writeFigureSVG renders a figure block as <dir>/<name>.svg, in the style
// of the paper's Figures 2 and 3.
func writeFigureSVG(dir, name string, blk *experiment.Block) error {
	measureLabel := "entropy measure"
	if blk.Measure == experiment.LM {
		measureLabel = "LM measure"
	}
	chart := plot.Chart{
		Title:  fmt.Sprintf("Comparison of algorithms by the %s (%s)", measureLabel, blk.Dataset),
		XLabel: "k",
		YLabel: "Information loss",
	}
	type row struct {
		label  string
		s      experiment.Series
		dashed bool
	}
	for _, rw := range []row{
		{"k-anon.", blk.BestKAnon, false},
		{"forest alg.", blk.Forest, true},
		{"(k,k)-anon.", blk.BestKK, false},
	} {
		var xs, ys []float64
		for _, k := range blk.SortedKs() {
			xs = append(xs, float64(k))
			ys = append(ys, rw.s.Losses[k])
		}
		chart.Series = append(chart.Series, plot.Series{Name: rw.label, X: xs, Y: ys, Dashed: rw.dashed})
	}
	svg, err := chart.SVG()
	if err != nil {
		return err
	}
	return os.WriteFile(filepath.Join(dir, name+".svg"), []byte(svg), 0o644)
}

var allExperiments = []string{
	"table1", "fig2", "fig3", "distances", "modified", "k1",
	"global", "recoding", "queries", "diversity", "scale",
}

func (r *runner) run(w io.Writer, exp string, asJSON bool) error {
	names := []string{exp}
	if exp == "all" {
		names = allExperiments
	}
	type envelope struct {
		Experiment string            `json:"experiment"`
		Config     experiment.Config `json:"config"`
		Data       interface{}       `json:"data"`
	}
	var envelopes []envelope
	for _, name := range names {
		data, text, err := r.collect(name)
		if err != nil {
			return err
		}
		if asJSON {
			envelopes = append(envelopes, envelope{Experiment: name, Config: r.cfg, Data: data})
			continue
		}
		if exp == "all" {
			fmt.Fprintf(w, "==== %s ====\n", name)
		}
		fmt.Fprintln(w, text)
	}
	if asJSON {
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		if len(envelopes) == 1 {
			return enc.Encode(envelopes[0])
		}
		return enc.Encode(envelopes)
	}
	return nil
}
