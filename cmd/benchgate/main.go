// Command benchgate is the CI bench-smoke regression gate (DESIGN.md §17).
//
// It reads a `go test -bench` output file and BENCH_cluster.json, computes
// the ratio of the lazy heap-path engine time to the same-run reference
// (kernel-off) time at n=2000, and fails when the ratio exceeds the
// recorded baseline by more than the allowed regression margin (default
// 20%). Gating on the in-run ratio rather than absolute ns/op makes the
// gate independent of the CI machine's clock speed: a slower runner slows
// both paths alike, while a regression in the heap path moves only the
// numerator.
//
// Usage:
//
//	go run ./cmd/benchgate -in bench-kernel.txt [-baseline BENCH_cluster.json] [-margin 0.20]
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
)

const (
	lazyBench = "BenchmarkAgglomerateWorkers/n=2000/workers=1"
	refBench  = "BenchmarkAgglomerateKernelOff"
)

// baselineFile is the slice of BENCH_cluster.json the gate reads.
type baselineFile struct {
	CIGate struct {
		// RatioN2000VsKernelOff is the recorded baseline ratio
		// lazy(n=2000, workers=1) / kernel-off(n=2000) from the
		// environment BENCH_cluster.json was measured in.
		RatioN2000VsKernelOff float64 `json:"ratio_n2000_vs_kernel_off"`
	} `json:"ci_gate"`
}

// parseBench scans go-test benchmark output for the named benchmarks and
// returns their ns/op. Multiple runs of the same benchmark (e.g. -count>1)
// keep the minimum, the conventional noise-resistant reading.
func parseBench(path string, names ...string) (map[string]float64, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	out := make(map[string]float64, len(names))
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		fields := strings.Fields(sc.Text())
		// "BenchmarkX-8   3   290856165 ns/op ..." or unsuffixed on
		// GOMAXPROCS=1 runners.
		if len(fields) < 4 {
			continue
		}
		name := fields[0]
		if i := strings.LastIndexByte(name, '-'); i > 0 {
			if _, err := strconv.Atoi(name[i+1:]); err == nil {
				name = name[:i]
			}
		}
		match := false
		for _, want := range names {
			if name == want {
				match = true
				break
			}
		}
		if !match {
			continue
		}
		for i := 1; i+1 < len(fields); i++ {
			if fields[i+1] == "ns/op" {
				ns, err := strconv.ParseFloat(fields[i], 64)
				if err != nil {
					return nil, fmt.Errorf("benchgate: bad ns/op for %s: %q", name, fields[i])
				}
				if prev, ok := out[name]; !ok || ns < prev {
					out[name] = ns
				}
				break
			}
		}
	}
	return out, sc.Err()
}

func main() {
	in := flag.String("in", "", "benchmark output file (go test -bench output)")
	baseline := flag.String("baseline", "BENCH_cluster.json", "baseline file with the recorded ci_gate ratio")
	margin := flag.Float64("margin", 0.20, "allowed relative regression of the heap-path ratio")
	flag.Parse()
	if *in == "" {
		fmt.Fprintln(os.Stderr, "benchgate: -in is required")
		os.Exit(2)
	}

	raw, err := os.ReadFile(*baseline)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchgate: %v\n", err)
		os.Exit(2)
	}
	var base baselineFile
	if err := json.Unmarshal(raw, &base); err != nil {
		fmt.Fprintf(os.Stderr, "benchgate: parsing %s: %v\n", *baseline, err)
		os.Exit(2)
	}
	baseRatio := base.CIGate.RatioN2000VsKernelOff
	if baseRatio <= 0 {
		fmt.Fprintf(os.Stderr, "benchgate: %s has no ci_gate.ratio_n2000_vs_kernel_off\n", *baseline)
		os.Exit(2)
	}

	got, err := parseBench(*in, lazyBench, refBench)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchgate: %v\n", err)
		os.Exit(2)
	}
	lazy, ok1 := got[lazyBench]
	ref, ok2 := got[refBench]
	if !ok1 || !ok2 {
		fmt.Fprintf(os.Stderr, "benchgate: %s missing %s or %s\n", *in, lazyBench, refBench)
		os.Exit(2)
	}

	ratio := lazy / ref
	limit := baseRatio * (1 + *margin)
	fmt.Printf("benchgate: heap-path ratio %.4f (lazy %.0f ns / reference %.0f ns); baseline %.4f, limit %.4f (+%.0f%%)\n",
		ratio, lazy, ref, baseRatio, limit, *margin*100)
	if ratio > limit {
		fmt.Fprintf(os.Stderr, "benchgate: FAIL — heap-path n=2000 regressed beyond %.0f%% of the recorded baseline\n", *margin*100)
		os.Exit(1)
	}
	fmt.Println("benchgate: OK")
}
