package main

import (
	"context"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"kanon"
)

const testCSV = `age,city
30,haifa
31,haifa
32,tel-aviv
40,tel-aviv
41,jerusalem
42,jerusalem
`

const testHier = `{"attributes": [
  {"attribute": "age", "subsets": [
    {"label": "30s", "values": ["30", "31", "32"]},
    {"label": "40s", "values": ["40", "41", "42"]}
  ]}
]}`

func writeFile(t *testing.T, dir, name, content string) string {
	t.Helper()
	path := filepath.Join(dir, name)
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestRunEndToEnd(t *testing.T) {
	dir := t.TempDir()
	in := writeFile(t, dir, "in.csv", testCSV)
	hier := writeFile(t, dir, "hier.json", testHier)
	out := filepath.Join(dir, "out.csv")

	for _, notion := range []kanon.Notion{kanon.NotionK, kanon.NotionKK, kanon.NotionGlobal1K} {
		err := run(nil, runConfig{
			In: in, Hier: hier, Out: out, Header: true, Verify: true,
			Opt: kanon.Options{K: 3, Notion: notion, Measure: kanon.MeasureEntropy, Distance: "d3"},
		})
		if err != nil {
			t.Fatalf("notion %s: %v", notion, err)
		}
		data, err := os.ReadFile(out)
		if err != nil {
			t.Fatal(err)
		}
		lines := strings.Split(strings.TrimSpace(string(data)), "\n")
		if len(lines) != 7 { // header + 6 records
			t.Errorf("notion %s: %d output lines, want 7", notion, len(lines))
		}
		if lines[0] != "age,city" {
			t.Errorf("notion %s: header %q", notion, lines[0])
		}
	}
}

func TestRunForestAndVariants(t *testing.T) {
	dir := t.TempDir()
	in := writeFile(t, dir, "in.csv", testCSV)
	out := filepath.Join(dir, "out.csv")
	if err := run(nil, runConfig{In: in, Out: out, Header: true,
		Opt: kanon.Options{K: 2, Notion: kanon.NotionK, Forest: true, Measure: kanon.MeasureLM}}); err != nil {
		t.Fatalf("forest: %v", err)
	}
	if err := run(nil, runConfig{In: in, Out: out, Header: true,
		Opt: kanon.Options{K: 2, Notion: kanon.NotionKK, UseNearest: true, Measure: kanon.MeasureLM}}); err != nil {
		t.Fatalf("nearest: %v", err)
	}
}

func TestRunAttackReport(t *testing.T) {
	dir := t.TempDir()
	in := writeFile(t, dir, "in.csv", testCSV)
	hier := writeFile(t, dir, "hier.json", testHier)
	out := filepath.Join(dir, "out.csv")
	if err := run(nil, runConfig{In: in, Hier: hier, Out: out, Header: true, Attack: true,
		Opt: kanon.Options{K: 2, Notion: kanon.NotionGlobal1K, Measure: kanon.MeasureEntropy}}); err != nil {
		t.Fatalf("attack report: %v", err)
	}
}

func TestRunErrors(t *testing.T) {
	dir := t.TempDir()
	in := writeFile(t, dir, "in.csv", testCSV)
	if err := run(nil, runConfig{In: filepath.Join(dir, "missing.csv"), Header: true, Opt: kanon.Options{K: 2}}); err == nil {
		t.Error("expected error for missing input")
	}
	if err := run(nil, runConfig{In: in, Hier: filepath.Join(dir, "missing.json"), Header: true, Opt: kanon.Options{K: 2}}); err == nil {
		t.Error("expected error for missing hierarchy file")
	}
	bad := writeFile(t, dir, "bad.json", "{")
	if err := run(nil, runConfig{In: in, Hier: bad, Header: true, Opt: kanon.Options{K: 2}}); err == nil {
		t.Error("expected error for bad hierarchy JSON")
	}
	if err := run(nil, runConfig{In: in, Header: true, Opt: kanon.Options{K: 0}}); err == nil {
		t.Error("expected error for k=0")
	}
	if err := run(nil, runConfig{In: in, Out: filepath.Join(dir, "nodir", "out.csv"), Header: true, Opt: kanon.Options{K: 2}}); err == nil {
		t.Error("expected error for unwritable output")
	}
	if err := run(nil, runConfig{In: in, Sensitive: filepath.Join(dir, "missing-sens.txt"), Header: true, Opt: kanon.Options{K: 2}}); err == nil {
		t.Error("expected error for missing sensitive file")
	}
	short := writeFile(t, dir, "short-sens.txt", "a\nb\n")
	if err := run(nil, runConfig{In: in, Sensitive: short, Header: true, Opt: kanon.Options{K: 2}}); err == nil {
		t.Error("expected error for wrong sensitive length")
	}
}

func TestRunAutoHier(t *testing.T) {
	dir := t.TempDir()
	in := writeFile(t, dir, "in.csv", testCSV)
	out := filepath.Join(dir, "out.csv")
	if err := run(nil, runConfig{In: in, Out: out, AutoHier: 3, Header: true, Verify: true,
		Opt: kanon.Options{K: 3, Notion: kanon.NotionKK}}); err != nil {
		t.Fatalf("auto-hier run: %v", err)
	}
	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), "{") && !strings.Contains(string(data), "*") {
		t.Errorf("auto-hier output shows no generalization: %s", data)
	}
	hier := writeFile(t, dir, "hier.json", testHier)
	if err := run(nil, runConfig{In: in, Hier: hier, Out: out, AutoHier: 3, Header: true,
		Opt: kanon.Options{K: 3}}); err == nil {
		t.Error("expected -hier/-auto-hier exclusion error")
	}
}

func TestRunDiversity(t *testing.T) {
	dir := t.TempDir()
	in := writeFile(t, dir, "in.csv", testCSV)
	hier := writeFile(t, dir, "hier.json", testHier)
	sens := writeFile(t, dir, "sens.txt", "flu\ncancer\nflu\ncancer\nflu\ncancer\n")
	out := filepath.Join(dir, "out.csv")
	err := run(nil, runConfig{In: in, Hier: hier, Out: out, Sensitive: sens, Header: true, Verify: true,
		Opt: kanon.Options{K: 2, Notion: kanon.NotionKK, Diversity: 2}})
	if err != nil {
		t.Fatalf("diversity run: %v", err)
	}
}

func TestRunFullDomain(t *testing.T) {
	dir := t.TempDir()
	in := writeFile(t, dir, "in.csv", testCSV)
	hier := writeFile(t, dir, "hier.json", testHier)
	out := filepath.Join(dir, "out.csv")
	err := run(nil, runConfig{In: in, Hier: hier, Out: out, Header: true, Verify: true,
		Opt: kanon.Options{K: 3, Notion: kanon.NotionK, FullDomain: true}})
	if err != nil {
		t.Fatalf("full-domain run: %v", err)
	}
}

// TestRunStatsAndProfile exercises the -stats and -profile plumbing: the
// run must succeed, and the profile directory must hold non-empty capture
// files afterwards.
func TestRunStatsAndProfile(t *testing.T) {
	dir := t.TempDir()
	in := writeFile(t, dir, "in.csv", testCSV)
	hier := writeFile(t, dir, "hier.json", testHier)
	out := filepath.Join(dir, "out.csv")
	prof := filepath.Join(dir, "prof")
	err := run(nil, runConfig{In: in, Hier: hier, Out: out, Header: true, Stats: true, Profile: prof,
		Opt: kanon.Options{K: 3, Notion: kanon.NotionKK}})
	if err != nil {
		t.Fatalf("stats+profile run: %v", err)
	}
	for _, name := range []string{"cpu.pprof", "heap.pprof", "trace.out"} {
		fi, err := os.Stat(filepath.Join(prof, name))
		if err != nil {
			t.Errorf("missing capture %s: %v", name, err)
		} else if fi.Size() == 0 {
			t.Errorf("capture %s is empty", name)
		}
	}
}

// TestFlagFor pins the OptionsError-field → flag-name mapping used by the
// early-validation error message.
func TestFlagFor(t *testing.T) {
	for field, flag := range map[string]string{
		"K": "k", "Notion": "notion", "Measure": "measure",
		"Distance": "distance", "Forest": "forest",
		"FullDomain": "full-domain", "Diversity": "diversity",
	} {
		if got := flagFor(field); got != flag {
			t.Errorf("flagFor(%q) = %q, want %q", field, got, flag)
		}
	}
}

// TestRunMalformedInputNeverPanics is the panic-audit proof for the CLI:
// every malformed user input — ragged CSV, duplicate columns, bad
// hierarchy JSON, oversized input, short sensitive file — must come back
// as an error, never a panic.
func TestRunMalformedInputNeverPanics(t *testing.T) {
	dir := t.TempDir()
	hier := writeFile(t, dir, "hier.json", testHier)
	cases := []struct {
		name string
		csv  string
		hier string
		sens string
		max  int
	}{
		{name: "ragged row", csv: "age,city\n30,haifa\n31\n"},
		{name: "extra field", csv: "age,city\n30,haifa,extra\n"},
		{name: "duplicate column", csv: "age,age\n30,31\n"},
		{name: "empty input", csv: ""},
		{name: "header only", csv: "age,city\n"},
		{name: "too many records", csv: testCSV, max: 3},
		{name: "hierarchy value not in domain", csv: "age,city\n99,haifa\n98,haifa\n", hier: hier},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			defer func() {
				if v := recover(); v != nil {
					t.Fatalf("run panicked on malformed input: %v", v)
				}
			}()
			in := writeFile(t, dir, "in.csv", tc.csv)
			err := run(nil, runConfig{In: in, Hier: tc.hier, Sensitive: tc.sens, MaxRecords: tc.max, Header: true,
				Opt: kanon.Options{K: 2}})
			if err == nil {
				t.Fatal("malformed input produced no error")
			}
		})
	}
}

// TestRunCancelled checks the -timeout plumbing: a context that expires
// mid-run surfaces as a timeout error, not a partial output file.
func TestRunCancelled(t *testing.T) {
	dir := t.TempDir()
	in := writeFile(t, dir, "in.csv", testCSV)
	out := filepath.Join(dir, "out.csv")
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	err := run(ctx, runConfig{In: in, Out: out, Header: true, Opt: kanon.Options{K: 2}})
	if err == nil || !strings.Contains(err.Error(), "-timeout") {
		t.Fatalf("err = %v, want a -timeout message", err)
	}
	if _, statErr := os.Stat(out); statErr == nil {
		t.Fatal("cancelled run wrote an output file")
	}
}

// TestRunShardCheckpoint exercises the -shard-checkpoint flag end to end:
// a partitioned run writes one JSONL line per shard, a rerun against the
// same file restores every shard from its checkpoint, and a torn trailing
// line (killed run) is truncated away rather than corrupting the log.
func TestRunShardCheckpoint(t *testing.T) {
	dir := t.TempDir()
	in := writeFile(t, dir, "in.csv", testCSV)
	out := filepath.Join(dir, "out.csv")
	ckpt := filepath.Join(dir, "shards.jsonl")
	cfg := runConfig{In: in, Out: out, Header: true, ShardCkpt: ckpt,
		Opt: kanon.Options{K: 2, Notion: kanon.NotionK, MaxChunk: 3}}

	if err := run(nil, cfg); err != nil {
		t.Fatal(err)
	}
	first, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	log, err := os.ReadFile(ckpt)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(string(log)), "\n")
	if len(lines) < 2 {
		t.Fatalf("checkpoint holds %d lines, want one per shard (≥ 2)", len(lines))
	}

	// Simulate a kill mid-write: append a torn partial line, then resume.
	if err := os.WriteFile(ckpt, append(log, []byte(`{"shard":9,"si`)...), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run(nil, cfg); err != nil {
		t.Fatal(err)
	}
	resumed, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	if string(first) != string(resumed) {
		t.Error("resumed output differs from the original run")
	}
	// The torn tail must be gone and the log must still parse cleanly.
	log2, err := os.ReadFile(ckpt)
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(string(log2), `"si{`) || !strings.HasSuffix(string(log2), "\n") {
		t.Errorf("checkpoint log left unclean after torn-tail resume:\n%s", log2)
	}
	if _, err := loadShardCheckpoints(ckpt); err != nil {
		t.Errorf("resumed checkpoint unreadable: %v", err)
	}
}

// TestRunShardCheckpointRequiresChunk pins the flag dependency the main
// entrypoint enforces before run() is reached.
func TestRunShardCheckpointStaleParams(t *testing.T) {
	dir := t.TempDir()
	in := writeFile(t, dir, "in.csv", testCSV)
	out := filepath.Join(dir, "out.csv")
	ckpt := filepath.Join(dir, "shards.jsonl")
	if err := run(nil, runConfig{In: in, Out: out, Header: true, ShardCkpt: ckpt,
		Opt: kanon.Options{K: 2, Notion: kanon.NotionK, MaxChunk: 3}}); err != nil {
		t.Fatal(err)
	}
	// Same log, different k: every checkpoint is stale and must be
	// recomputed, and the release must honor the NEW k.
	if err := run(nil, runConfig{In: in, Out: out, Header: true, ShardCkpt: ckpt, Verify: true,
		Opt: kanon.Options{K: 3, Notion: kanon.NotionK, MaxChunk: 3}}); err != nil {
		t.Fatal(err)
	}
}
