package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"kanon"
)

const testCSV = `age,city
30,haifa
31,haifa
32,tel-aviv
40,tel-aviv
41,jerusalem
42,jerusalem
`

const testHier = `{"attributes": [
  {"attribute": "age", "subsets": [
    {"label": "30s", "values": ["30", "31", "32"]},
    {"label": "40s", "values": ["40", "41", "42"]}
  ]}
]}`

func writeFile(t *testing.T, dir, name, content string) string {
	t.Helper()
	path := filepath.Join(dir, name)
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestRunEndToEnd(t *testing.T) {
	dir := t.TempDir()
	in := writeFile(t, dir, "in.csv", testCSV)
	hier := writeFile(t, dir, "hier.json", testHier)
	out := filepath.Join(dir, "out.csv")

	for _, notion := range []kanon.Notion{kanon.NotionK, kanon.NotionKK, kanon.NotionGlobal1K} {
		err := run(in, hier, out, "", 0, true, kanon.Options{K: 3, Notion: notion, Measure: kanon.MeasureEntropy, Distance: "d3"}, true)
		if err != nil {
			t.Fatalf("notion %s: %v", notion, err)
		}
		data, err := os.ReadFile(out)
		if err != nil {
			t.Fatal(err)
		}
		lines := strings.Split(strings.TrimSpace(string(data)), "\n")
		if len(lines) != 7 { // header + 6 records
			t.Errorf("notion %s: %d output lines, want 7", notion, len(lines))
		}
		if lines[0] != "age,city" {
			t.Errorf("notion %s: header %q", notion, lines[0])
		}
	}
}

func TestRunForestAndVariants(t *testing.T) {
	dir := t.TempDir()
	in := writeFile(t, dir, "in.csv", testCSV)
	out := filepath.Join(dir, "out.csv")
	if err := run(in, "", out, "", 0, true, kanon.Options{K: 2, Notion: kanon.NotionK, Forest: true, Measure: kanon.MeasureLM}, false); err != nil {
		t.Fatalf("forest: %v", err)
	}
	if err := run(in, "", out, "", 0, true, kanon.Options{K: 2, Notion: kanon.NotionKK, UseNearest: true, Measure: kanon.MeasureLM}, false); err != nil {
		t.Fatalf("nearest: %v", err)
	}
}

func TestRunErrors(t *testing.T) {
	dir := t.TempDir()
	in := writeFile(t, dir, "in.csv", testCSV)
	if err := run(filepath.Join(dir, "missing.csv"), "", "", "", 0, true, kanon.Options{K: 2}, false); err == nil {
		t.Error("expected error for missing input")
	}
	if err := run(in, filepath.Join(dir, "missing.json"), "", "", 0, true, kanon.Options{K: 2}, false); err == nil {
		t.Error("expected error for missing hierarchy file")
	}
	bad := writeFile(t, dir, "bad.json", "{")
	if err := run(in, bad, "", "", 0, true, kanon.Options{K: 2}, false); err == nil {
		t.Error("expected error for bad hierarchy JSON")
	}
	if err := run(in, "", "", "", 0, true, kanon.Options{K: 0}, false); err == nil {
		t.Error("expected error for k=0")
	}
	if err := run(in, "", filepath.Join(dir, "nodir", "out.csv"), "", 0, true, kanon.Options{K: 2}, false); err == nil {
		t.Error("expected error for unwritable output")
	}
	if err := run(in, "", "", filepath.Join(dir, "missing-sens.txt"), 0, true, kanon.Options{K: 2}, false); err == nil {
		t.Error("expected error for missing sensitive file")
	}
	short := writeFile(t, dir, "short-sens.txt", "a\nb\n")
	if err := run(in, "", "", short, 0, true, kanon.Options{K: 2}, false); err == nil {
		t.Error("expected error for wrong sensitive length")
	}
}

func TestRunAutoHier(t *testing.T) {
	dir := t.TempDir()
	in := writeFile(t, dir, "in.csv", testCSV)
	out := filepath.Join(dir, "out.csv")
	if err := run(in, "", out, "", 3, true, kanon.Options{K: 3, Notion: kanon.NotionKK}, true); err != nil {
		t.Fatalf("auto-hier run: %v", err)
	}
	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), "{") && !strings.Contains(string(data), "*") {
		t.Errorf("auto-hier output shows no generalization: %s", data)
	}
	hier := writeFile(t, dir, "hier.json", testHier)
	if err := run(in, hier, out, "", 3, true, kanon.Options{K: 3}, false); err == nil {
		t.Error("expected -hier/-auto-hier exclusion error")
	}
}

func TestRunDiversity(t *testing.T) {
	dir := t.TempDir()
	in := writeFile(t, dir, "in.csv", testCSV)
	hier := writeFile(t, dir, "hier.json", testHier)
	sens := writeFile(t, dir, "sens.txt", "flu\ncancer\nflu\ncancer\nflu\ncancer\n")
	out := filepath.Join(dir, "out.csv")
	err := run(in, hier, out, sens, 0, true,
		kanon.Options{K: 2, Notion: kanon.NotionKK, Diversity: 2}, true)
	if err != nil {
		t.Fatalf("diversity run: %v", err)
	}
}

func TestRunFullDomain(t *testing.T) {
	dir := t.TempDir()
	in := writeFile(t, dir, "in.csv", testCSV)
	hier := writeFile(t, dir, "hier.json", testHier)
	out := filepath.Join(dir, "out.csv")
	err := run(in, hier, out, "", 0, true,
		kanon.Options{K: 3, Notion: kanon.NotionK, FullDomain: true}, true)
	if err != nil {
		t.Fatalf("full-domain run: %v", err)
	}
}
