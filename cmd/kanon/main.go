// Command kanon anonymizes a CSV table of public attributes according to
// one of the k-type anonymity notions of "k-Anonymization Revisited".
//
// Usage:
//
//	kanon -in data.csv -hier hierarchies.json -k 10 -notion kk -out anon.csv
//
// Notions: k (classical k-anonymity via the agglomerative algorithm, or
// -forest for the Aggarwal et al. baseline), kk ((k,k)-anonymity, the
// paper's practical recommendation), global (global (1,k)-anonymity).
// The hierarchy spec is optional; without it every attribute may only be
// kept or fully suppressed.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"kanon"
)

func main() {
	var (
		inPath    = flag.String("in", "", "input CSV file (default stdin)")
		hierPath  = flag.String("hier", "", "JSON generalization-hierarchy spec (optional)")
		outPath   = flag.String("out", "", "output CSV file (default stdout)")
		noHeader  = flag.Bool("no-header", false, "input CSV has no header row")
		k         = flag.Int("k", 10, "anonymity parameter k")
		notion    = flag.String("notion", "kk", "anonymity notion: k, kk, global")
		measure   = flag.String("measure", "entropy", "loss measure: entropy, monotone-entropy, lm, tree, suppression")
		distance  = flag.String("distance", "d3", "agglomerative distance (notion=k): d1..d4, nc")
		modified  = flag.Bool("modified", false, "use the modified agglomerative algorithm (notion=k)")
		forest    = flag.Bool("forest", false, "use the forest baseline algorithm (notion=k)")
		fullDom   = flag.Bool("full-domain", false, "use optimal full-domain (global recoding) generalization (notion=k)")
		nearest   = flag.Bool("nearest", false, "seed (k,k)/global with Algorithm 3 instead of Algorithm 4")
		verify    = flag.Bool("verify", false, "verify the output against all notions (quadratic)")
		diversity = flag.Int("diversity", 0, "require distinct ℓ-diversity of the sensitive attribute (needs -sensitive)")
		sensPath  = flag.String("sensitive", "", "file with one sensitive value per record (enables -diversity)")
		autoHier  = flag.Int("auto-hier", 0, "infer interval hierarchies for numeric attributes (base bucket width, 0=off)")
		workers   = flag.Int("workers", 0, "worker pool size for the parallel anonymizers (0 = all CPUs, 1 = sequential; output is identical)")
		timeout   = flag.Duration("timeout", 0, "abort the run after this duration (e.g. 30s; 0 = no limit)")
		maxRec    = flag.Int("max-records", 0, "fail fast when the input has more than this many records (0 = no limit)")
	)
	flag.Parse()

	var ctx context.Context
	if *timeout > 0 {
		c, cancel := context.WithTimeout(context.Background(), *timeout)
		defer cancel()
		ctx = c
	}
	if err := run(ctx, *inPath, *hierPath, *outPath, *sensPath, *autoHier, *maxRec, !*noHeader, kanon.Options{
		K:          *k,
		Notion:     kanon.Notion(*notion),
		Measure:    kanon.MeasureName(*measure),
		Distance:   *distance,
		Modified:   *modified,
		Forest:     *forest,
		FullDomain: *fullDom,
		UseNearest: *nearest,
		Diversity:  *diversity,
		Workers:    *workers,
	}, *verify); err != nil {
		fmt.Fprintln(os.Stderr, "kanon:", err)
		os.Exit(1)
	}
}

func run(ctx context.Context, inPath, hierPath, outPath, sensPath string, autoHier, maxRecords int, header bool, opt kanon.Options, verify bool) error {
	var in io.Reader = os.Stdin
	if inPath != "" {
		f, err := os.Open(inPath)
		if err != nil {
			return err
		}
		defer f.Close()
		in = f
	}
	tbl, err := kanon.LoadCSVLimit(in, header, maxRecords)
	if err != nil {
		return err
	}
	if hierPath != "" && autoHier > 0 {
		return fmt.Errorf("-hier and -auto-hier are mutually exclusive")
	}
	if autoHier > 0 {
		if err := tbl.AutoHierarchies(autoHier); err != nil {
			return err
		}
	}
	if hierPath != "" {
		hf, err := os.Open(hierPath)
		if err != nil {
			return err
		}
		err = tbl.SetHierarchiesJSON(hf)
		hf.Close()
		if err != nil {
			return err
		}
	}
	if sensPath != "" {
		data, err := os.ReadFile(sensPath)
		if err != nil {
			return err
		}
		values := strings.Split(strings.TrimRight(string(data), "\n"), "\n")
		if err := tbl.SetSensitive("sensitive", values); err != nil {
			return err
		}
	}

	res, err := kanon.AnonymizeContext(ctx, tbl, opt)
	if err != nil {
		if ctx != nil && ctx.Err() != nil {
			return fmt.Errorf("run did not finish within the -timeout: %w", err)
		}
		return err
	}

	var out io.Writer = os.Stdout
	if outPath != "" {
		f, err := os.Create(outPath)
		if err != nil {
			return err
		}
		defer f.Close()
		out = f
	}
	if err := res.WriteCSV(out); err != nil {
		return err
	}

	fmt.Fprintf(os.Stderr, "n=%d k=%d notion=%s measure=%s loss=%.4f discernibility=%d\n",
		tbl.Len(), opt.K, opt.Notion, opt.Measure, res.Loss(), res.Discernibility())
	if opt.Notion == kanon.NotionGlobal1K {
		st := res.UpgradeStats
		fmt.Fprintf(os.Stderr, "global upgrade: %d deficient records, %d widening steps\n",
			st.DeficientRecords, st.GeneralizationSteps)
	}
	if verify {
		fmt.Fprintln(os.Stderr, res.Verify(opt.K))
	}
	return nil
}
