// Command kanon anonymizes a CSV table of public attributes according to
// one of the k-type anonymity notions of "k-Anonymization Revisited".
//
// Usage:
//
//	kanon -in data.csv -hier hierarchies.json -k 10 -notion kk -out anon.csv
//
// Notions: k (classical k-anonymity via the agglomerative algorithm, or
// -forest for the Aggarwal et al. baseline), kk ((k,k)-anonymity, the
// paper's practical recommendation), global (global (1,k)-anonymity).
// The hierarchy spec is optional; without it every attribute may only be
// kept or fully suppressed.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strings"

	"kanon"
	"kanon/internal/resilient"
)

func main() {
	var (
		inPath     = flag.String("in", "", "input CSV file (default stdin)")
		hierPath   = flag.String("hier", "", "JSON generalization-hierarchy spec (optional)")
		outPath    = flag.String("out", "", "output CSV file (default stdout)")
		noHeader   = flag.Bool("no-header", false, "input CSV has no header row")
		k          = flag.Int("k", 10, "anonymity parameter k")
		notion     = flag.String("notion", "kk", "anonymity notion: k, kk, global")
		measure    = flag.String("measure", "entropy", "loss measure: entropy, monotone-entropy, lm, tree, suppression")
		distance   = flag.String("distance", "d3", "agglomerative distance (notion=k): d1..d4, nc")
		modified   = flag.Bool("modified", false, "use the modified agglomerative algorithm (notion=k)")
		forest     = flag.Bool("forest", false, "use the forest baseline algorithm (notion=k)")
		fullDom    = flag.Bool("full-domain", false, "use optimal full-domain (global recoding) generalization (notion=k)")
		nearest    = flag.Bool("nearest", false, "seed (k,k)/global with Algorithm 3 instead of Algorithm 4")
		verify     = flag.Bool("verify", false, "verify the output against all notions (quadratic)")
		attackRpt  = flag.Bool("attack", false, "run the adversarial evaluation suite against the output and print the risk report (quadratic)")
		diversity  = flag.Int("diversity", 0, "require distinct ℓ-diversity of the sensitive attribute (needs -sensitive)")
		constraint = flag.String("constraint", "", "privacy constraints on the sensitive attribute, comma-separated name=value specs: distinct=L, entropy=L, recursive=C/L, tclose=T (needs -sensitive)")
		lFlag      = flag.Int("l", 0, "shorthand for -constraint distinct=L")
		tFlag      = flag.Float64("t", -1, "shorthand for -constraint tclose=T")
		sensPath   = flag.String("sensitive", "", "file with one sensitive value per record (enables -diversity and -constraint)")
		autoHier   = flag.Int("auto-hier", 0, "infer interval hierarchies for numeric attributes (base bucket width, 0=off)")
		workers    = flag.Int("workers", 0, "worker pool size for the parallel anonymizers (0 = all CPUs, 1 = sequential; output is identical)")
		kernel     = flag.String("kernel", "on", "flat distance kernel for the agglomerative engine: on, off (output is identical)")
		timeout    = flag.Duration("timeout", 0, "abort the run after this duration (e.g. 30s; 0 = no limit)")
		maxRec     = flag.Int("max-records", 0, "fail fast when the input has more than this many records (0 = no limit)")
		stats      = flag.Bool("stats", false, "print the run's statistics (phases, counters, peaks) as JSON on stderr")
		profile    = flag.String("profile", "", "write cpu.pprof, heap.pprof and trace.out into this directory")
		maxChunk   = flag.Int("max-chunk", 0, "switch notion=k to the sharded partitioned pipeline with chunks of at most this many records (0 = off)")
		retries    = flag.Int("retries", 0, "shard attempts per partitioned shard, including the first (0 = default 3; needs -max-chunk)")
		degraded   = flag.Bool("degraded", true, "complete shards that exhaust their retry budget with the reference engine instead of failing the run (needs -max-chunk)")
		retrySeed  = flag.Int64("retry-seed", 0, "seed of the deterministic shard-retry backoff schedule (needs -max-chunk)")
		shardDL    = flag.Duration("shard-deadline", 0, "per-attempt deadline for each partitioned shard (e.g. 30s; 0 = no limit; needs -max-chunk)")
		shardCkpt  = flag.String("shard-checkpoint", "", "JSONL file of completed-shard checkpoints: existing entries resume the run, new shards are appended (needs -max-chunk)")
	)
	flag.Parse()

	opt := kanon.Options{
		K:          *k,
		Notion:     kanon.Notion(*notion),
		Measure:    kanon.MeasureName(*measure),
		Distance:   *distance,
		Modified:   *modified,
		Forest:     *forest,
		FullDomain: *fullDom,
		UseNearest: *nearest,
		Diversity:  *diversity,
		Workers:    *workers,
		NoKernel:   *kernel == "off",
		MaxChunk:   *maxChunk,
	}
	cons, err := kanon.ParseConstraints(*constraint)
	if err != nil {
		fmt.Fprintf(os.Stderr, "kanon: bad -constraint: %v\n", err)
		os.Exit(2)
	}
	if *lFlag > 0 {
		cons = append(cons, kanon.DistinctDiversity(*lFlag))
	}
	if *tFlag >= 0 {
		cons = append(cons, kanon.Closeness(*tFlag))
	}
	opt.Constraints = cons
	if *retries > 0 || !*degraded || *retrySeed != 0 {
		rp := kanon.DefaultRetryPolicy()
		if *retries > 0 {
			rp.MaxAttempts = *retries
		}
		rp.Seed = *retrySeed
		rp.DegradedFallback = *degraded
		opt.RetryPolicy = rp
	}
	opt.ShardDeadline = *shardDL
	switch *kernel {
	case "on", "off":
	default:
		fmt.Fprintf(os.Stderr, "kanon: bad -kernel: must be on or off (value %q)\n", *kernel)
		os.Exit(2)
	}
	if *shardCkpt != "" && *maxChunk <= 0 {
		fmt.Fprintln(os.Stderr, "kanon: bad -shard-checkpoint: requires -max-chunk > 0")
		os.Exit(2)
	}
	// Reject bad option combinations before touching any data, naming the
	// offending flag.
	if err := opt.Validate(); err != nil {
		var oe *kanon.OptionsError
		if errors.As(err, &oe) {
			fmt.Fprintf(os.Stderr, "kanon: bad -%s: %s (value %v)\n", flagFor(oe.Field), oe.Reason, oe.Value)
		} else {
			fmt.Fprintln(os.Stderr, "kanon:", err)
		}
		os.Exit(2)
	}

	var ctx context.Context
	if *timeout > 0 {
		c, cancel := context.WithTimeout(context.Background(), *timeout)
		defer cancel()
		ctx = c
	}
	if err := run(ctx, runConfig{
		In:         *inPath,
		Hier:       *hierPath,
		Out:        *outPath,
		Sensitive:  *sensPath,
		AutoHier:   *autoHier,
		MaxRecords: *maxRec,
		Header:     !*noHeader,
		Opt:        opt,
		Verify:     *verify,
		Attack:     *attackRpt,
		Stats:      *stats,
		Profile:    *profile,
		ShardCkpt:  *shardCkpt,
	}); err != nil {
		fmt.Fprintln(os.Stderr, "kanon:", err)
		os.Exit(1)
	}
}

// flagFor maps an OptionsError field to the CLI flag that feeds it.
func flagFor(field string) string {
	switch field {
	case "K":
		return "k"
	case "FullDomain":
		return "full-domain"
	case "MaxChunk":
		return "max-chunk"
	case "RetryPolicy":
		return "retries"
	case "ShardDeadline":
		return "shard-deadline"
	case "OnShard", "CompletedShards":
		return "shard-checkpoint"
	case "Constraints":
		return "constraint"
	default:
		return strings.ToLower(field)
	}
}

// runConfig collects everything one CLI invocation needs; flags map onto it
// 1:1.
type runConfig struct {
	In, Hier, Out, Sensitive string
	AutoHier                 int
	MaxRecords               int
	Header                   bool
	Opt                      kanon.Options
	Verify                   bool
	// Attack runs the adversarial evaluation suite against the release and
	// prints the risk report on stderr.
	Attack bool
	// Stats prints the run's RunStats as JSON on stderr.
	Stats bool
	// Profile, when non-empty, is a directory receiving cpu.pprof,
	// heap.pprof and trace.out captures bracketing the anonymization.
	Profile string
	// ShardCkpt, when non-empty, is a JSONL shard-checkpoint file: existing
	// entries seed Options.CompletedShards (resuming a killed partitioned
	// run), and every newly completed shard is appended durably.
	ShardCkpt string
}

// loadShardCheckpoints reads a JSONL shard-checkpoint file, tolerating a
// missing file (fresh run) and a torn trailing line (killed run). If the
// file carries a torn tail it is truncated away, so the appends of the
// resumed run start on a clean line boundary.
func loadShardCheckpoints(path string) ([]kanon.ShardCheckpoint, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		if os.IsNotExist(err) {
			return nil, nil
		}
		return nil, err
	}
	m, valid, err := resilient.ParseLog(data)
	if err != nil {
		return nil, err
	}
	if valid < int64(len(data)) {
		fmt.Fprintf(os.Stderr, "kanon: dropping torn tail of %s (%d bytes)\n", path, int64(len(data))-valid)
		if err := os.Truncate(path, valid); err != nil {
			return nil, err
		}
	}
	shards := make([]int, 0, len(m))
	for i := range m {
		shards = append(shards, i)
	}
	sort.Ints(shards)
	out := make([]kanon.ShardCheckpoint, len(shards))
	for j, i := range shards {
		out[j] = kanon.ShardCheckpoint(m[i])
	}
	return out, nil
}

func run(ctx context.Context, c runConfig) error {
	var in io.Reader = os.Stdin
	if c.In != "" {
		f, err := os.Open(c.In)
		if err != nil {
			return err
		}
		defer f.Close()
		in = f
	}
	tbl, err := kanon.LoadCSVLimit(in, c.Header, c.MaxRecords)
	if err != nil {
		return err
	}
	if c.Hier != "" && c.AutoHier > 0 {
		return fmt.Errorf("-hier and -auto-hier are mutually exclusive")
	}
	if c.AutoHier > 0 {
		if err := tbl.AutoHierarchies(c.AutoHier); err != nil {
			return err
		}
	}
	if c.Hier != "" {
		hf, err := os.Open(c.Hier)
		if err != nil {
			return err
		}
		err = tbl.SetHierarchiesJSON(hf)
		hf.Close()
		if err != nil {
			return err
		}
	}
	if c.Sensitive != "" {
		data, err := os.ReadFile(c.Sensitive)
		if err != nil {
			return err
		}
		values := strings.Split(strings.TrimRight(string(data), "\n"), "\n")
		if err := tbl.SetSensitive("sensitive", values); err != nil {
			return err
		}
	}

	opt := c.Opt
	if c.ShardCkpt != "" {
		completed, err := loadShardCheckpoints(c.ShardCkpt)
		if err != nil {
			return err
		}
		opt.CompletedShards = completed
		f, err := os.OpenFile(c.ShardCkpt, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			return err
		}
		defer f.Close()
		enc := json.NewEncoder(f)
		// Shards complete sequentially on the driving goroutine, so the
		// append needs no locking; each line is durable once written.
		opt.OnShard = func(ck kanon.ShardCheckpoint) {
			if err := enc.Encode(ck); err != nil {
				fmt.Fprintln(os.Stderr, "kanon: shard checkpoint write:", err)
			}
		}
		if len(completed) > 0 {
			fmt.Fprintf(os.Stderr, "resuming: %d completed shards loaded from %s\n", len(completed), c.ShardCkpt)
		}
	}
	var prof *kanon.Profile
	if c.Profile != "" {
		if err := os.MkdirAll(c.Profile, 0o755); err != nil {
			return err
		}
		// A trace observer pairs the trace.out capture with per-phase
		// regions.
		opt.Observer = kanon.TraceObserver()
		p, err := kanon.StartProfile(kanon.ProfileDir(c.Profile))
		if err != nil {
			return err
		}
		prof = p
	}
	res, err := kanon.AnonymizeContext(ctx, tbl, opt)
	if prof != nil {
		if perr := prof.Stop(); perr != nil && err == nil {
			err = perr
		}
	}
	if err != nil {
		if ctx != nil && ctx.Err() != nil {
			return fmt.Errorf("run did not finish within the -timeout: %w", err)
		}
		return err
	}

	var out io.Writer = os.Stdout
	if c.Out != "" {
		f, err := os.Create(c.Out)
		if err != nil {
			return err
		}
		defer f.Close()
		out = f
	}
	if err := res.WriteCSV(out); err != nil {
		return err
	}

	fmt.Fprintf(os.Stderr, "n=%d k=%d notion=%s measure=%s loss=%.4f discernibility=%d\n",
		tbl.Len(), opt.K, opt.Notion, opt.Measure, res.Loss(), res.Discernibility())
	st := res.Stats()
	if rr := res.Resilience(); rr != nil {
		fmt.Fprintf(os.Stderr, "shards=%d retries=%d quarantined=%d degraded=%d checkpoint_hits=%d\n",
			len(rr.Shards), rr.Retries, rr.Quarantined, rr.Degraded, rr.CheckpointHits)
		for _, sh := range rr.Shards {
			if sh.Degraded {
				fmt.Fprintf(os.Stderr, "  shard %d (%d records) degraded: %s\n", sh.Shard, sh.Records, sh.DegradedReason)
			}
		}
	}
	report, err := res.ConstraintReport()
	if err != nil {
		return err
	}
	for _, cs := range report {
		fmt.Fprintf(os.Stderr, "constraint %s: satisfied=%v violations=%d classes=%d metric=[%.3f, %.3f]\n",
			cs.Constraint, cs.Satisfied, cs.Violations, cs.Classes, cs.MinMetric, cs.MaxMetric)
	}
	if opt.Notion == kanon.NotionGlobal1K {
		fmt.Fprintf(os.Stderr, "global upgrade: %d deficient records, %d widening steps\n",
			st.Counter("core.global.deficient"), st.Counter("core.global.steps"))
	}
	if c.Stats {
		fmt.Fprintln(os.Stderr, st.JSON())
	}
	if c.Verify {
		fmt.Fprintln(os.Stderr, res.Verify(opt.K))
	}
	if c.Attack {
		sum, err := res.AttackEvaluation(opt.K)
		if err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "attack report k=%d over %d records:\n", sum.K, sum.Records)
		for _, v := range []kanon.AttackVector{sum.Matching, sum.Refinement, sum.Intersection} {
			fmt.Fprintf(os.Stderr, "  %-12s vulnerable=%d (%.1f%%) min-candidates=%d exposed=%d\n",
				v.Attack, v.Vulnerable, v.VulnerablePct, v.MinCandidates, v.Exposed)
		}
		fmt.Fprintf(os.Stderr, "  %-12s vulnerable=%d (%.1f%%)\n", "union", sum.VulnerableUnion, sum.Score)
	}
	return nil
}
