package main

import (
	"bytes"
	"encoding/json"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"

	"kanon/internal/analysis/analysistest"
)

// TestVersionFlag pins the `-V=full` identity line the go command
// requires from a vettool: at least three fields, the second "version".
func TestVersionFlag(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run([]string{"-V=full"}, &out, &errb); code != 0 {
		t.Fatalf("run(-V=full) = %d, stderr: %s", code, errb.String())
	}
	fields := strings.Fields(out.String())
	if len(fields) < 3 || fields[0] != "kanonlint" || fields[1] != "version" {
		t.Fatalf("-V=full output %q does not match \"kanonlint version <id>\"", out.String())
	}
}

// TestFlagsEndpoint pins the `-flags` JSON handshake.
func TestFlagsEndpoint(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run([]string{"-flags"}, &out, &errb); code != 0 {
		t.Fatalf("run(-flags) = %d", code)
	}
	var decoded []interface{}
	if err := json.Unmarshal([]byte(out.String()), &decoded); err != nil {
		t.Fatalf("-flags output %q is not a JSON array: %v", out.String(), err)
	}
	if len(decoded) != 0 {
		t.Fatalf("-flags declared unexpected flags: %v", decoded)
	}
}

// TestJSONOutput pins the -json document: valid JSON, stable across
// runs, suppressed findings carried with their reasons. The cluster
// package has self-contained, suppressed determinism findings, so the
// document is non-trivial even in a single-package load.
func TestJSONOutput(t *testing.T) {
	if testing.Short() {
		t.Skip("loads and type-checks packages")
	}
	runJSON := func() string {
		var out, errb bytes.Buffer
		if code := run([]string{"-json", "kanon/internal/cluster"}, &out, &errb); code != 0 {
			t.Fatalf("run(-json) = %d, stderr: %s", code, errb.String())
		}
		return out.String()
	}
	first := runJSON()
	if second := runJSON(); second != first {
		t.Errorf("-json output is not stable across runs:\n%s\n---\n%s", first, second)
	}
	var report struct {
		Findings []struct {
			File, Analyzer, Message, Reason string
			Line, Column                    int
			Suppressed                      bool
		}
		Unsuppressed int
	}
	if err := json.Unmarshal([]byte(first), &report); err != nil {
		t.Fatalf("-json output is not valid JSON: %v\n%s", err, first)
	}
	if report.Unsuppressed != 0 {
		t.Errorf("expected a clean package, got %d unsuppressed findings", report.Unsuppressed)
	}
	if len(report.Findings) == 0 {
		t.Fatal("expected suppressed determinism findings in kanon/internal/cluster, got none")
	}
	for _, f := range report.Findings {
		if !f.Suppressed || f.Reason == "" {
			t.Errorf("finding %+v should be suppressed with a reason", f)
		}
	}
}

// TestRunFlag pins analyzer selection: unknown names fail fast, and a
// known subset runs clean over a clean package.
func TestRunFlag(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run([]string{"-run", "nosuch", "kanon/internal/redact"}, &out, &errb); code != 2 {
		t.Fatalf("run(-run nosuch) = %d, want 2", code)
	}
	if !strings.Contains(errb.String(), "unknown analyzer") {
		t.Errorf("expected an unknown-analyzer error, got: %s", errb.String())
	}
	if testing.Short() {
		return
	}
	out.Reset()
	errb.Reset()
	if code := run([]string{"-run", "leakcheck,determinism", "kanon/internal/redact"}, &out, &errb); code != 0 {
		t.Fatalf("run(-run leakcheck,determinism) = %d, stderr: %s", code, errb.String())
	}
}

// writeUnitConfig materializes a vetConfig as a .cfg file in dir.
func writeUnitConfig(t *testing.T, dir string, cfg vetConfig) string {
	t.Helper()
	data, err := json.Marshal(cfg)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, "vet.cfg")
	if err := os.WriteFile(path, data, 0o666); err != nil {
		t.Fatal(err)
	}
	return path
}

// TestUnitCheckFindings runs the unitchecker path over a constructed
// config whose package (posing as kanon/internal/cluster) contains a raw
// goroutine and a time.Now call, and checks the diagnostics, the exit
// code, and the facts-file side of the protocol.
func TestUnitCheckFindings(t *testing.T) {
	dir := t.TempDir()
	src := `package cluster

import "time"

func bad() time.Time {
	go func() {}()
	return time.Now()
}
`
	srcPath := filepath.Join(dir, "x.go")
	if err := os.WriteFile(srcPath, []byte(src), 0o666); err != nil {
		t.Fatal(err)
	}
	root, err := analysistest.ModuleRoot()
	if err != nil {
		t.Fatal(err)
	}
	vetx := filepath.Join(dir, "out.vetx")
	cfgPath := writeUnitConfig(t, dir, vetConfig{
		ImportPath:  "kanon/internal/cluster",
		GoFiles:     []string{srcPath},
		PackageFile: stdlibExports(t, root, "time"),
		VetxOutput:  vetx,
	})

	var out, errb bytes.Buffer
	code := run([]string{cfgPath}, &out, &errb)
	if code != 2 {
		t.Fatalf("run(%s) = %d, want 2; stderr: %s", cfgPath, code, errb.String())
	}
	msgs := errb.String()
	if !strings.Contains(msgs, "nogoroutine") || !strings.Contains(msgs, "determinism") {
		t.Errorf("unit mode missed findings; stderr:\n%s", msgs)
	}
	if _, err := os.Stat(vetx); err != nil {
		t.Errorf("VetxOutput was not written: %v", err)
	}
}

// TestUnitCheckVetxOnly pins that dependency-only invocations write the
// facts file and analyze nothing.
func TestUnitCheckVetxOnly(t *testing.T) {
	dir := t.TempDir()
	vetx := filepath.Join(dir, "out.vetx")
	cfgPath := writeUnitConfig(t, dir, vetConfig{
		ImportPath: "time",
		VetxOnly:   true,
		VetxOutput: vetx,
	})
	var out, errb bytes.Buffer
	if code := run([]string{cfgPath}, &out, &errb); code != 0 {
		t.Fatalf("VetxOnly run = %d, stderr: %s", code, errb.String())
	}
	if _, err := os.Stat(vetx); err != nil {
		t.Errorf("VetxOutput was not written: %v", err)
	}
}

// TestUnitCheckTypecheckFailure pins SucceedOnTypecheckFailure: the go
// command sets it when the compiler will report the error anyway.
func TestUnitCheckTypecheckFailure(t *testing.T) {
	dir := t.TempDir()
	srcPath := filepath.Join(dir, "broken.go")
	if err := os.WriteFile(srcPath, []byte("package p\n\nvar x undefinedType\n"), 0o666); err != nil {
		t.Fatal(err)
	}
	for _, succeed := range []bool{true, false} {
		cfgPath := writeUnitConfig(t, dir, vetConfig{
			ImportPath:                "kanon/internal/cluster",
			GoFiles:                   []string{srcPath},
			VetxOutput:                filepath.Join(dir, "out.vetx"),
			SucceedOnTypecheckFailure: succeed,
		})
		var out, errb bytes.Buffer
		code := run([]string{cfgPath}, &out, &errb)
		want := 1
		if succeed {
			want = 0
		}
		if code != want {
			t.Errorf("SucceedOnTypecheckFailure=%v: run = %d, want %d", succeed, code, want)
		}
	}
}

// TestVettoolEndToEnd builds kanonlint and runs it through a real
// `go vet -vettool` invocation over a known-clean package.
func TestVettoolEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("builds a binary and shells out to go vet")
	}
	root, err := analysistest.ModuleRoot()
	if err != nil {
		t.Fatal(err)
	}
	bin := filepath.Join(t.TempDir(), "kanonlint")
	build := exec.Command("go", "build", "-o", bin, "./cmd/kanonlint")
	build.Dir = root
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("building kanonlint: %v\n%s", err, out)
	}
	vet := exec.Command("go", "vet", "-vettool="+bin, "./internal/analysis/suite")
	vet.Dir = root
	if out, err := vet.CombinedOutput(); err != nil {
		t.Fatalf("go vet -vettool failed: %v\n%s", err, out)
	}
}

// stdlibExports resolves export-data files for the given stdlib imports
// the way the go command would populate vetConfig.PackageFile.
func stdlibExports(t *testing.T, moduleDir string, imports ...string) map[string]string {
	t.Helper()
	args := append([]string{"list", "-e", "-export", "-deps", "-json=ImportPath,Export"}, imports...)
	cmd := exec.Command("go", args...)
	cmd.Dir = moduleDir
	out, err := cmd.Output()
	if err != nil {
		t.Fatalf("go list: %v", err)
	}
	exports := make(map[string]string)
	dec := json.NewDecoder(bytes.NewReader(out))
	for dec.More() {
		var p struct {
			ImportPath string
			Export     string
		}
		if err := dec.Decode(&p); err != nil {
			t.Fatal(err)
		}
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
	}
	return exports
}
