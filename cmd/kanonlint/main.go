// Command kanonlint runs the project's static-analysis suite
// (internal/analysis/...): constraintpure, ctxflow, deprecated,
// determinism, faultsite, leakcheck, nogoroutine and obsphase, with
// //kanon:allow suppression.
//
// Standalone:
//
//	go run ./cmd/kanonlint ./...             # exit 1 on unsuppressed findings
//	go run ./cmd/kanonlint -allows ./...     # inventory of allow directives
//	go run ./cmd/kanonlint -json ./...       # stable machine-readable findings
//	go run ./cmd/kanonlint -run leakcheck ./... # run a subset of the suite
//
// As a go vet tool (per-package analyzers only — faultsite needs the
// whole program and runs in standalone mode):
//
//	go build -o kanonlint ./cmd/kanonlint
//	go vet -vettool=$(pwd)/kanonlint ./...
//
// The vet protocol is the unitchecker contract: `-V=full` prints a
// versioned identity line, `-flags` declares the (empty) flag set, and a
// single *.cfg argument selects unit mode, where the go command supplies
// parsed build facts as JSON.
package main

import (
	"crypto/sha256"
	"encoding/json"
	"flag"
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"io"
	"os"
	"path/filepath"
	"strings"

	"kanon/internal/analysis"
	"kanon/internal/analysis/suite"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run dispatches between the vet protocol endpoints and standalone mode,
// returning the process exit code.
func run(args []string, stdout, stderr io.Writer) int {
	for _, a := range args {
		if a == "-V=full" || a == "--V=full" {
			printVersion(stdout)
			return 0
		}
	}
	if len(args) == 1 && args[0] == "-flags" {
		// No analyzer-specific flags: go vet will pass only the .cfg file.
		fmt.Fprintln(stdout, "[]")
		return 0
	}
	if len(args) == 1 && strings.HasSuffix(args[0], ".cfg") {
		return unitCheck(args[0], stderr)
	}
	return standalone(args, stdout, stderr)
}

// printVersion emits the `name version id` line the go command uses to
// fingerprint a vettool for build caching. The id hashes the executable
// so a rebuilt kanonlint invalidates stale vet results.
func printVersion(w io.Writer) {
	id := "unknown"
	if exe, err := os.Executable(); err == nil {
		if data, err := os.ReadFile(exe); err == nil {
			id = fmt.Sprintf("%x", sha256.Sum256(data))
		}
	}
	fmt.Fprintf(w, "kanonlint version %s\n", id)
}

// standalone loads the given package patterns (default ./...) from the
// working directory and runs the full suite, whole-program analyzers
// included. Exit codes: 0 clean, 1 unsuppressed findings, 2 load error.
func standalone(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("kanonlint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	allows := fs.Bool("allows", false, "list //kanon:allow directives instead of running analyzers")
	asJSON := fs.Bool("json", false, "emit findings as a stable JSON document (findings sorted by file, line, analyzer, message)")
	runOnly := fs.String("run", "", "comma-separated analyzer names to run (default: the full suite)")
	fs.Usage = func() {
		fmt.Fprintln(stderr, "usage: kanonlint [-allows] [-json] [-run names] [packages]")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return 2
	}
	analyzers, err := selectAnalyzers(*runOnly)
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 2
	}
	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	cwd, err := os.Getwd()
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 2
	}
	prog, err := analysis.Load(cwd, patterns...)
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 2
	}

	if *allows {
		dirs, diags := analysis.Directives(prog, suite.Analyzers())
		for _, d := range dirs {
			fmt.Fprintf(stdout, "%s: %s -- %s\n", relPos(cwd, d.Pos), strings.Join(d.Analyzers, ","), d.Reason)
		}
		for _, d := range diags {
			fmt.Fprintln(stderr, relDiag(cwd, d))
		}
		if len(diags) > 0 {
			return 1
		}
		return 0
	}

	// Directives may name any suite analyzer, selected or not, without
	// tripping the unknown-name check.
	selected := map[string]bool{}
	for _, a := range analyzers {
		selected[a.Name] = true
	}
	var extraKnown []string
	for _, a := range suite.Analyzers() {
		if !selected[a.Name] {
			extraKnown = append(extraKnown, a.Name)
		}
	}
	diags, err := analysis.Run(prog, analyzers, extraKnown...)
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 2
	}
	open := analysis.Unsuppressed(diags)
	if *asJSON {
		if err := writeJSON(stdout, cwd, diags); err != nil {
			fmt.Fprintln(stderr, err)
			return 2
		}
	} else {
		for _, d := range open {
			fmt.Fprintln(stdout, relDiag(cwd, d))
		}
	}
	if len(open) > 0 {
		fmt.Fprintf(stderr, "kanonlint: %d unsuppressed finding(s)\n", len(open))
		return 1
	}
	return 0
}

// selectAnalyzers resolves a -run list against the suite (empty = all).
func selectAnalyzers(runOnly string) ([]*analysis.Analyzer, error) {
	all := suite.Analyzers()
	if runOnly == "" {
		return all, nil
	}
	byName := map[string]*analysis.Analyzer{}
	for _, a := range all {
		byName[a.Name] = a
	}
	var out []*analysis.Analyzer
	for _, name := range strings.Split(runOnly, ",") {
		name = strings.TrimSpace(name)
		a, ok := byName[name]
		if !ok {
			return nil, fmt.Errorf("kanonlint: unknown analyzer %q in -run", name)
		}
		out = append(out, a)
	}
	return out, nil
}

// jsonFinding is one diagnostic of the -json document. The document is
// stable: findings arrive pre-sorted by file, line, analyzer and message,
// suppressed ones included (marked, with their reasons), so CI can diff
// two runs byte for byte.
type jsonFinding struct {
	File       string `json:"file"`
	Line       int    `json:"line"`
	Column     int    `json:"column"`
	Analyzer   string `json:"analyzer"`
	Message    string `json:"message"`
	Suppressed bool   `json:"suppressed,omitempty"`
	Reason     string `json:"reason,omitempty"`
}

// jsonReport is the top-level -json document.
type jsonReport struct {
	Findings     []jsonFinding `json:"findings"`
	Unsuppressed int           `json:"unsuppressed"`
}

// writeJSON renders the diagnostics as the stable JSON document.
func writeJSON(w io.Writer, dir string, diags []analysis.Diagnostic) error {
	report := jsonReport{Findings: []jsonFinding{}}
	for _, d := range diags {
		name := d.Pos.Filename
		if rel, err := filepath.Rel(dir, name); err == nil && !strings.HasPrefix(rel, "..") {
			name = rel
		}
		report.Findings = append(report.Findings, jsonFinding{
			File:       name,
			Line:       d.Pos.Line,
			Column:     d.Pos.Column,
			Analyzer:   d.Analyzer,
			Message:    d.Message,
			Suppressed: d.Suppressed,
			Reason:     d.Reason,
		})
		if !d.Suppressed {
			report.Unsuppressed++
		}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(report)
}

// relPos renders a position with the filename relative to dir when that
// makes it shorter, matching go vet's output style.
func relPos(dir string, pos token.Position) string {
	name := pos.Filename
	if rel, err := filepath.Rel(dir, name); err == nil && !strings.HasPrefix(rel, "..") {
		name = rel
	}
	return fmt.Sprintf("%s:%d:%d", name, pos.Line, pos.Column)
}

func relDiag(dir string, d analysis.Diagnostic) string {
	return fmt.Sprintf("%s: %s: %s", relPos(dir, d.Pos), d.Analyzer, d.Message)
}

// vetConfig is the JSON the go command writes into the *.cfg file for
// each vetted package (the unitchecker protocol).
type vetConfig struct {
	ID                        string
	Compiler                  string
	Dir                       string
	ImportPath                string
	GoFiles                   []string
	NonGoFiles                []string
	ImportMap                 map[string]string
	PackageFile               map[string]string
	Standard                  map[string]bool
	PackageVetx               map[string]string
	VetxOnly                  bool
	VetxOutput                string
	SucceedOnTypecheckFailure bool
}

// unitCheck analyzes one package under the go vet protocol. Only the
// per-package analyzers run — there is no whole-program view inside a
// single compilation unit. Exit codes: 0 clean, 2 findings (relayed by
// go vet), 1 protocol or typecheck failure.
func unitCheck(cfgPath string, stderr io.Writer) int {
	data, err := os.ReadFile(cfgPath)
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 1
	}
	var cfg vetConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		fmt.Fprintf(stderr, "kanonlint: parsing %s: %v\n", cfgPath, err)
		return 1
	}
	// The go command requires the facts output to exist even though
	// kanonlint exports no facts; write it first so every early return
	// below leaves the protocol satisfied.
	if cfg.VetxOutput != "" {
		if err := os.WriteFile(cfg.VetxOutput, nil, 0o666); err != nil {
			fmt.Fprintln(stderr, err)
			return 1
		}
	}
	if cfg.VetxOnly {
		return 0
	}
	importPath := cfg.ImportPath
	// Test variants are listed as "pkg [pkg.test]"; analyze them under
	// the base path so path-gated analyzers behave identically.
	if i := strings.Index(importPath, " ["); i >= 0 {
		importPath = importPath[:i]
	}
	if strings.HasSuffix(importPath, ".test") {
		// Generated test-main package: nothing of ours to check.
		return 0
	}

	fset := token.NewFileSet()
	var files, testFiles []*ast.File
	for _, name := range cfg.GoFiles {
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments)
		if err != nil {
			fmt.Fprintln(stderr, err)
			return 1
		}
		if strings.HasSuffix(name, "_test.go") {
			testFiles = append(testFiles, f)
			continue
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		// External test package (pkg_test): per-package analyzers skip
		// test files entirely.
		return 0
	}

	lookup := func(path string) (io.ReadCloser, error) {
		if mapped, ok := cfg.ImportMap[path]; ok {
			path = mapped
		}
		file, ok := cfg.PackageFile[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	}
	tpkg, info, err := analysis.TypeCheckFiles(fset, importPath, cfg.Compiler, files, lookup)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			return 0
		}
		fmt.Fprintln(stderr, err)
		return 1
	}

	prog := &analysis.Program{
		Fset: fset,
		Packages: []*analysis.Package{{
			PkgPath:   importPath,
			Dir:       cfg.Dir,
			Files:     files,
			TestFiles: testFiles,
			Types:     tpkg,
			TypesInfo: info,
		}},
	}
	// Whole-program analyzers cannot run inside a single compilation
	// unit, but directives naming them are still well-formed.
	var wholeProgram []string
	for _, a := range suite.Analyzers() {
		if a.WholeProgram {
			wholeProgram = append(wholeProgram, a.Name)
		}
	}
	diags, err := analysis.Run(prog, suite.PerPackage(), wholeProgram...)
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 1
	}
	open := analysis.Unsuppressed(diags)
	for _, d := range open {
		fmt.Fprintln(stderr, d)
	}
	if len(open) > 0 {
		return 2
	}
	return 0
}
