// Package kanon is a library for k-type anonymization of tabular microdata,
// implementing the algorithms and anonymity notions of "k-Anonymization
// Revisited" (Gionis, Mazza, Tassa; ICDE 2008).
//
// The paper relaxes classical k-anonymity through the consistency relation
// between original and generalized records, yielding four additional
// notions — (1,k)-, (k,1)-, (k,k)- and global (1,k)-anonymity — that admit
// strictly higher-utility generalizations. kanon provides:
//
//   - agglomerative k-anonymization under local recoding (Algorithms 1–2
//     with the four inter-cluster distances of the paper),
//   - the forest algorithm of Aggarwal et al. as a baseline,
//   - (k,k)-anonymization (Algorithms 3/4 coupled with Algorithm 5),
//   - global (1,k)-anonymization via bipartite perfect-matching tests
//     (Algorithm 6),
//   - entropy, LM and tree information-loss measures, and
//   - verifiers for every notion, plus distinct/entropy ℓ-diversity.
//
// A minimal use:
//
//	t, _ := kanon.LoadCSV(f, true)
//	_ = t.SetHierarchiesJSON(specFile)
//	res, _ := kanon.Anonymize(t, kanon.Options{K: 10, Notion: kanon.NotionKK})
//	_ = res.WriteCSV(os.Stdout)
package kanon

import (
	"context"
	"fmt"
	"io"
	"time"

	"kanon/internal/anonymity"
	"kanon/internal/cluster"
	"kanon/internal/core"
	"kanon/internal/datagen"
	"kanon/internal/dataio"
	"kanon/internal/hierarchy"
	"kanon/internal/loss"
	"kanon/internal/obs"
	"kanon/internal/par"
	"kanon/internal/resilient"
	"kanon/internal/risk"
	"kanon/internal/table"
)

// Notion selects the anonymity guarantee the anonymizer must establish.
type Notion string

// The supported anonymity notions. NotionK is classical k-anonymity
// (Definition 4.1); NotionKK is (k,k)-anonymity (Definition 4.4), the
// paper's recommended practical choice; NotionGlobal1K is global
// (1,k)-anonymity (Definition 4.6), as secure as k-anonymity even against
// an adversary who knows exactly who is in the database.
const (
	NotionK        Notion = "k"
	NotionKK       Notion = "kk"
	NotionGlobal1K Notion = "global"
)

// MeasureName selects the information-loss measure.
type MeasureName string

// The supported measures: the entropy measure ΠE of Definition 4.3, its
// monotone variant from Gionis–Tassa (ESA'07), the LM measure of eq. (4),
// the tree measure of Aggarwal et al., and the suppression count of
// Meyerson–Williams.
const (
	MeasureEntropy         MeasureName = "entropy"
	MeasureMonotoneEntropy MeasureName = "monotone-entropy"
	MeasureLM              MeasureName = "lm"
	MeasureTree            MeasureName = "tree"
	MeasureSuppression     MeasureName = "suppression"
)

// buildMeasure constructs the named measure for a table's hierarchies.
func buildMeasure(t *Table, name MeasureName) (loss.Measure, error) {
	switch name {
	case MeasureEntropy:
		return loss.NewEntropy(t.tbl, t.hiers)
	case MeasureMonotoneEntropy:
		return loss.NewMonotoneEntropy(t.tbl, t.hiers)
	case MeasureLM:
		return loss.NewLM(t.hiers), nil
	case MeasureTree:
		return loss.NewTree(t.hiers), nil
	case MeasureSuppression:
		return loss.NewSuppression(t.hiers), nil
	default:
		return nil, fmt.Errorf("kanon: unknown measure %q", name)
	}
}

// Table is a dataset prepared for anonymization: public records plus one
// generalization hierarchy per attribute (trivial suppress-only hierarchies
// until configured otherwise).
type Table struct {
	tbl   *table.Table
	hiers []*hierarchy.Hierarchy

	sensitive       []int
	sensitiveName   string
	sensitiveValues []string
}

// LoadCSV reads a table of public attributes from CSV. When header is true
// the first row names the attributes. All hierarchies start trivial
// (each value may only be kept or fully suppressed); install richer ones
// with SetHierarchiesJSON.
func LoadCSV(r io.Reader, header bool) (*Table, error) {
	return LoadCSVLimit(r, header, 0)
}

// LoadCSVLimit is LoadCSV with a record cap: a stream with more than
// maxRecords data rows fails fast with a typed error instead of feeding a
// runaway input to the (quadratic) anonymizers. maxRecords ≤ 0 means
// unlimited.
func LoadCSVLimit(r io.Reader, header bool, maxRecords int) (*Table, error) {
	tbl, err := dataio.ReadCSVOptions(r, dataio.ReadOptions{Header: header, MaxRecords: maxRecords})
	if err != nil {
		return nil, err
	}
	hiers := make([]*hierarchy.Hierarchy, tbl.Schema.NumAttrs())
	for j, a := range tbl.Schema.Attrs {
		hiers[j] = hierarchy.Flat(a.Size())
	}
	return &Table{tbl: tbl, hiers: hiers}, nil
}

// SetHierarchiesJSON installs generalization hierarchies from a JSON
// specification (see internal/dataio.HierarchySpec for the format):
//
//	{"attributes": [{"attribute": "age",
//	                 "subsets": [{"label": "30s", "values": ["30","31",...]}]}]}
//
// Attributes absent from the spec keep the trivial hierarchy.
func (t *Table) SetHierarchiesJSON(r io.Reader) error {
	hiers, err := dataio.LoadHierarchies(r, t.tbl.Schema)
	if err != nil {
		return err
	}
	t.hiers = hiers
	return nil
}

// AutoHierarchies infers generalization hierarchies without a spec:
// integer-valued attributes get interval hierarchies over their numeric
// order (bucket widths doubling from baseWidth), everything else keeps
// the trivial keep-or-suppress hierarchy. A quick default before writing
// semantic hierarchies by hand.
func (t *Table) AutoHierarchies(baseWidth int) error {
	hiers, err := dataio.AutoHierarchies(t.tbl, baseWidth)
	if err != nil {
		return err
	}
	t.hiers = hiers
	return nil
}

// ART returns the paper's artificial benchmark dataset with n records
// (Section VI), generated deterministically from seed.
func ART(n int, seed int64) *Table { return fromDataset(datagen.ART(n, seed)) }

// Adult returns the synthetic Adult-census benchmark dataset (the paper's
// ADT) with n records.
func Adult(n int, seed int64) *Table { return fromDataset(datagen.Adult(n, seed)) }

// CMC returns the synthetic contraceptive-survey benchmark dataset (the
// paper's CMC) with n records.
func CMC(n int, seed int64) *Table { return fromDataset(datagen.CMC(n, seed)) }

func fromDataset(ds *datagen.Dataset) *Table {
	return &Table{
		tbl:             ds.Table,
		hiers:           ds.Hiers,
		sensitive:       ds.Sensitive,
		sensitiveName:   ds.SensitiveName,
		sensitiveValues: ds.SensitiveValues,
	}
}

// Len returns the number of records.
func (t *Table) Len() int { return t.tbl.Len() }

// NumAttrs returns the number of public attributes.
func (t *Table) NumAttrs() int { return t.tbl.Schema.NumAttrs() }

// AttrNames returns the public attribute names in schema order.
func (t *Table) AttrNames() []string {
	names := make([]string, t.tbl.Schema.NumAttrs())
	for j, a := range t.tbl.Schema.Attrs {
		names[j] = a.Name
	}
	return names
}

// Row returns record i as string values.
func (t *Table) Row(i int) []string { return t.tbl.Strings(i) }

// SensitiveValue returns the sensitive attribute of record i as a string,
// for the built-in benchmark datasets ("" when no sensitive attribute is
// attached).
func (t *Table) SensitiveValue(i int) string {
	if t.sensitive == nil {
		return ""
	}
	return t.sensitiveValues[t.sensitive[i]]
}

// SetSensitive attaches a sensitive (private) attribute to the table: one
// value per record, in record order. The sensitive attribute is never part
// of the anonymized schema; it powers the Diversity option, ℓ-diversity
// checks, and candidate-diversity reporting.
func (t *Table) SetSensitive(name string, values []string) error {
	if len(values) != t.tbl.Len() {
		return fmt.Errorf("kanon: %d sensitive values for %d records", len(values), t.tbl.Len())
	}
	index := make(map[string]int)
	ids := make([]int, len(values))
	var domain []string
	for i, v := range values {
		id, ok := index[v]
		if !ok {
			id = len(domain)
			index[v] = id
			domain = append(domain, v)
		}
		ids[i] = id
	}
	t.sensitive = ids
	t.sensitiveName = name
	t.sensitiveValues = domain
	return nil
}

// WriteCSV writes the original table as CSV.
func (t *Table) WriteCSV(w io.Writer) error { return dataio.WriteCSV(w, t.tbl) }

// Options configures Anonymize.
type Options struct {
	// K is the anonymity parameter; required, ≥ 2 for any useful guarantee.
	K int
	// Notion is the guarantee to establish; default NotionKK.
	Notion Notion
	// Measure is the loss measure to optimize; default MeasureEntropy.
	Measure MeasureName
	// Distance names the agglomerative inter-cluster distance for NotionK
	// ("d1".."d4", "nc"); default "d3". Ignored for the other notions.
	Distance string
	// Modified selects the modified agglomerative algorithm (Algorithm 2)
	// for NotionK.
	Modified bool
	// UseNearest seeds the (k,k) pipeline with Algorithm 3 (nearest
	// neighbours) instead of the default Algorithm 4 (greedy expansion).
	UseNearest bool
	// Forest replaces the agglomerative k-anonymizer with the Aggarwal et
	// al. forest baseline for NotionK.
	Forest bool
	// FullDomain replaces local recoding with the optimal full-domain
	// (global-recoding) generalization for NotionK — the Incognito-style
	// baseline the paper's Section II contrasts local recoding with.
	FullDomain bool
	// Diversity, when ≥ 2, additionally enforces distinct ℓ-diversity of
	// the sensitive attribute: for NotionK every equivalence class, and for
	// NotionKK every record's candidate set, carries at least Diversity
	// distinct sensitive values. The table must have a sensitive attribute
	// (the built-in benchmark datasets do; SetSensitive attaches one).
	// Diversity is sugar for a single DistinctDiversity constraint; use
	// Constraints for the other notions. Setting both is rejected.
	Diversity int
	// Constraints enforces privacy constraints on the sensitive attribute —
	// DistinctDiversity, EntropyDiversity, RecursiveDiversity, Closeness —
	// on top of the anonymity notion: for NotionK every equivalence class,
	// and for NotionKK every record's candidate set, must satisfy each of
	// them. The table must have a sensitive attribute. Supported for
	// NotionK (agglomerative) and NotionKK; audit the release with
	// Result.ConstraintReport.
	Constraints []Constraint
	// MaxChunk, when > 0, switches NotionK to the scalable partitioned
	// agglomerative algorithm: records are pre-partitioned along the
	// hierarchies into chunks of at most MaxChunk before clustering,
	// trading a small utility penalty for near-linear scaling.
	MaxChunk int
	// Workers caps the worker pools of the parallel anonymizers: 1 forces
	// the sequential paths, 0 (the default) sizes the pools to the machine.
	// The output is identical at any worker count.
	Workers int
	// NoKernel disables the flat distance kernel of the agglomerative
	// engine (the `-kernel=off` escape hatch of cmd/kanon), forcing the
	// reference evaluation path. The output is identical either way; only
	// speed differs.
	NoKernel bool
	// Observer, when non-nil, receives the run's structured event stream
	// (phase boundaries, merges, scans, augmentations, chunks — see the
	// Event* constants). It must be safe for concurrent use: the parallel
	// engines emit events from their pool workers. Independently of any
	// Observer, every run's aggregated metrics are available from
	// Result.Stats().
	Observer Observer
	// RetryPolicy overrides the shard supervisor of the partitioned
	// pipeline (NotionK with MaxChunk > 0). nil selects the defaults: 3
	// attempts per shard, deterministic 5ms–250ms backoff, degraded
	// fallback enabled. Setting a policy makes the configuration fully
	// explicit — in particular DegradedFallback must be set to true to keep
	// the fallback. Requires MaxChunk > 0.
	RetryPolicy *RetryPolicy
	// ShardDeadline bounds each primary shard attempt of the partitioned
	// pipeline; an attempt exceeding it counts as a transient failure and
	// is retried. 0 means unbounded. Requires MaxChunk > 0.
	ShardDeadline time.Duration
	// OnShard, when non-nil, is invoked after each partitioned shard
	// completes, with a checkpoint from which the shard can be restored.
	// Persist these (e.g. as JSONL) to make a killed run resumable at
	// shard granularity. Requires MaxChunk > 0.
	OnShard func(ShardCheckpoint)
	// CompletedShards seeds a partitioned run with shard checkpoints from
	// a previous (killed) run: shards whose checkpoint signature matches
	// the current parameters and records are restored byte-identically
	// instead of recomputed; stale checkpoints are ignored. Requires
	// MaxChunk > 0.
	CompletedShards []ShardCheckpoint
}

// RetryPolicy configures the shard supervisor of the partitioned pipeline
// (DESIGN.md §14). The schedule it induces is deterministic: same Seed,
// same faults → the same backoff trace and the same RunReport, bit for
// bit.
type RetryPolicy struct {
	// MaxAttempts is the number of primary-engine attempts per shard,
	// including the first; ≤ 0 selects 3.
	MaxAttempts int
	// Backoff is the delay before the second attempt of a shard, doubling
	// per further attempt; ≤ 0 selects 5ms.
	Backoff time.Duration
	// BackoffMax caps the exponential backoff; ≤ 0 selects 250ms.
	BackoffMax time.Duration
	// Seed drives the deterministic backoff jitter.
	Seed int64
	// DegradedFallback completes shards that exhaust their retry budget
	// with the reference (kernel-off, single-worker) engine instead of
	// failing the run. The reference engine is proven byte-identical to
	// the primary path, so degradation never changes output — only the
	// RunReport records it. False fails the run with a *ShardError-style
	// error once any shard quarantines.
	DegradedFallback bool
}

// DefaultRetryPolicy returns the supervisor defaults used when
// Options.RetryPolicy is nil: 3 attempts, 5ms–250ms backoff, degraded
// fallback enabled.
func DefaultRetryPolicy() *RetryPolicy {
	return &RetryPolicy{MaxAttempts: 3, Backoff: 5 * time.Millisecond, BackoffMax: 250 * time.Millisecond, DegradedFallback: true}
}

// ShardCheckpoint is the durable record of one completed partitioned
// shard: the shard index, a signature binding it to the run parameters and
// record set, and the shard's clusters as record-index sets. Marshal as
// JSON for persistence; feed back via Options.CompletedShards to resume.
type ShardCheckpoint struct {
	Shard    int     `json:"shard"`
	Sig      uint64  `json:"sig"`
	Clusters [][]int `json:"clusters"`
}

// Result is an anonymized table plus the context needed to inspect it.
type Result struct {
	table      *Table
	gen        *table.GenTable
	space      *cluster.Space
	measure    loss.Measure
	opt        Options
	stats      RunStats
	resilience *ResilienceReport
}

// Stats returns the run's unified observability statistics: per-phase wall
// times, counter totals (merges, distance evaluations, scans, widening
// steps, chunks, …), peak gauges and scheduler gauges. Counter totals and
// peaks are identical at every worker count for the same input; wall times
// and the Sched gauges are the timing-dependent remainder.
func (r *Result) Stats() RunStats { return r.stats }

// ShardOutcome summarizes the supervision of one partitioned shard.
type ShardOutcome struct {
	// Shard is the shard's index; Records its record count.
	Shard   int
	Records int
	// Attempts is the number of supervised attempts, including the
	// successful (or terminal) one.
	Attempts int
	// Quarantined marks a shard that exhausted its retry budget on the
	// primary engine; Degraded marks it completed by the reference engine,
	// with DegradedReason saying why.
	Quarantined    bool
	Degraded       bool
	DegradedReason string
	// FromCheckpoint marks a shard restored from Options.CompletedShards.
	FromCheckpoint bool
}

// ResilienceReport aggregates the shard supervisor's outcomes for a
// partitioned run. It is deterministic: same input, same faults, same
// report at any worker count.
type ResilienceReport struct {
	// Shards holds one outcome per shard, in shard order.
	Shards []ShardOutcome
	// Retries, Quarantined, Degraded and CheckpointHits are the run totals
	// (also emitted as resilient.* counters in Stats()).
	Retries        int
	Quarantined    int
	Degraded       int
	CheckpointHits int
}

// Clean reports whether every shard completed on the primary engine at
// the first attempt.
func (r *ResilienceReport) Clean() bool {
	return r != nil && r.Retries == 0 && r.Quarantined == 0 && r.Degraded == 0 && r.CheckpointHits == 0
}

// Resilience returns the shard supervisor's report for a partitioned run
// (NotionK with MaxChunk > 0), and nil for every other pipeline.
func (r *Result) Resilience() *ResilienceReport { return r.resilience }

// facadeResilience converts the internal RunReport to the facade mirror.
func facadeResilience(rep *resilient.RunReport) *ResilienceReport {
	if rep == nil {
		return nil
	}
	out := &ResilienceReport{
		Shards:         make([]ShardOutcome, len(rep.Shards)),
		Retries:        rep.Retries,
		Quarantined:    rep.Quarantined,
		Degraded:       rep.Degraded,
		CheckpointHits: rep.CheckpointHits,
	}
	for i, s := range rep.Shards {
		out.Shards[i] = ShardOutcome{
			Shard:          s.Shard,
			Records:        s.Records,
			Attempts:       len(s.Attempts),
			Quarantined:    s.Quarantined,
			Degraded:       s.Degraded,
			DegradedReason: s.DegradedReason,
			FromCheckpoint: s.FromCheckpoint,
		}
	}
	return out
}

// Anonymize generalizes the table until it satisfies the requested notion,
// minimizing the requested information-loss measure heuristically. It is
// AnonymizeContext under context.Background().
func Anonymize(t *Table, opt Options) (*Result, error) {
	return AnonymizeContext(context.Background(), t, opt) //kanon:allow ctxflow -- Anonymize is the documented no-context convenience wrapper
}

// AnonymizeContext is Anonymize under a context: every pipeline checks for
// cancellation at its scan/merge boundaries, and once ctx is done the call
// returns ctx.Err() promptly with no partial output.
//
// Nil-context handling is defined here, once, for the whole stack: a nil
// ctx is treated as context.Background(), i.e. cancellation disabled. The
// internal *Ctx variants share that convention through a single check
// (internal/par.Done), so passing nil to any layer is always equivalent to
// passing a context that is never done.
func AnonymizeContext(ctx context.Context, t *Table, opt Options) (*Result, error) {
	if err := opt.Validate(); err != nil {
		return nil, err
	}
	if ctx == nil {
		ctx = context.Background() //kanon:allow ctxflow -- THE canonical nil-ctx definition site (see doc comment above)
	}
	if opt.Notion == "" {
		opt.Notion = NotionKK
	}
	if opt.Measure == "" {
		opt.Measure = MeasureEntropy
	}
	cons := effectiveConstraints(opt)
	if len(cons) > 0 && t.sensitive == nil {
		if opt.Diversity >= 2 {
			return nil, optErr("Diversity", opt.Diversity, "requires a table with a sensitive attribute")
		}
		return nil, optErr("Constraints", constraintString(opt.Constraints), "requires a table with a sensitive attribute")
	}
	clusterCons, err := buildConstraints(t, cons)
	if err != nil {
		return nil, err
	}
	m, err := buildMeasure(t, opt.Measure)
	if err != nil {
		return nil, err
	}
	s, err := cluster.NewSpace(t.hiers, m)
	if err != nil {
		return nil, err
	}

	// Every run aggregates its own metrics (for Result.Stats()); a
	// user-supplied Observer additionally sees the raw event stream.
	met := obs.NewMetrics()
	ctx = obs.WithRun(ctx, obs.NewRun(obs.Tee(met, opt.Observer)))

	res := &Result{table: t, space: s, measure: m, opt: opt}
	switch opt.Notion {
	case NotionK:
		if opt.Forest || opt.FullDomain {
			var g *table.GenTable
			if opt.Forest {
				g, _, err = core.ForestCtx(ctx, s, t.tbl, opt.K)
			} else {
				g, _, err = core.FullDomainCtx(ctx, s, t.tbl, opt.K)
			}
			if err != nil {
				return nil, err
			}
			res.gen = g
			break
		}
		distName := opt.Distance
		if distName == "" {
			distName = "d3"
		}
		dist := cluster.DistanceByName(distName)
		kopt := core.KAnonOptions{K: opt.K, Distance: dist, Modified: opt.Modified, Workers: opt.Workers, NoKernel: opt.NoKernel}
		var g *table.GenTable
		switch {
		case len(clusterCons) > 0:
			kopt.Constraints = clusterCons
			kopt.Sensitive = t.sensitive
			g, _, err = core.KAnonymizeCtx(ctx, s, t.tbl, kopt)
		case opt.MaxChunk > 0:
			popt := core.PartitionedOptions{
				K: opt.K, Distance: dist, Modified: opt.Modified, MaxChunk: opt.MaxChunk,
				Workers: opt.Workers, NoKernel: opt.NoKernel,
			}
			if opt.RetryPolicy != nil || opt.ShardDeadline > 0 {
				rp := opt.RetryPolicy
				if rp == nil {
					rp = DefaultRetryPolicy()
				}
				popt.Resilience = &resilient.Policy{
					MaxAttempts:   rp.MaxAttempts,
					BackoffBase:   rp.Backoff,
					BackoffMax:    rp.BackoffMax,
					Seed:          rp.Seed,
					ShardDeadline: opt.ShardDeadline,
					NoDegraded:    !rp.DegradedFallback,
				}
			}
			if opt.OnShard != nil {
				onShard := opt.OnShard
				popt.OnShard = func(ck resilient.ShardCheckpoint) {
					onShard(ShardCheckpoint(ck))
				}
			}
			if len(opt.CompletedShards) > 0 {
				popt.CompletedShards = make(map[int]resilient.ShardCheckpoint, len(opt.CompletedShards))
				for _, ck := range opt.CompletedShards {
					popt.CompletedShards[ck.Shard] = resilient.ShardCheckpoint(ck)
				}
			}
			var rep *resilient.RunReport
			g, _, rep, err = core.KAnonymizePartitionedReportCtx(ctx, s, t.tbl, popt)
			res.resilience = facadeResilience(rep)
		default:
			g, _, err = core.KAnonymizeCtx(ctx, s, t.tbl, kopt)
		}
		if err != nil {
			return nil, err
		}
		res.gen = g
	case NotionKK:
		alg := core.K1ByExpansion
		if opt.UseNearest {
			alg = core.K1ByNearest
		}
		var g *table.GenTable
		if len(clusterCons) > 0 {
			g, err = core.KKAnonymizeConstrainedCtx(ctx, s, t.tbl, opt.K, alg, clusterCons, t.sensitive, opt.Workers)
		} else {
			g, err = core.KKAnonymizeCtx(ctx, s, t.tbl, opt.K, alg, opt.Workers)
		}
		if err != nil {
			return nil, err
		}
		res.gen = g
	case NotionGlobal1K:
		alg := core.K1ByExpansion
		if opt.UseNearest {
			alg = core.K1ByNearest
		}
		g, err := core.KKAnonymizeCtx(ctx, s, t.tbl, opt.K, alg, opt.Workers)
		if err != nil {
			return nil, err
		}
		g, _, err = core.MakeGlobal1KCtx(ctx, s, t.tbl, g, opt.K)
		if err != nil {
			return nil, err
		}
		res.gen = g
	}
	res.stats = met.Snapshot()
	res.stats.Notion = string(opt.Notion)
	res.stats.Workers = par.Workers(opt.Workers)
	res.stats.Records = t.Len()
	return res, nil
}

// Loss returns the information loss Π(D, g(D)) of the result under the
// measure it was optimized for.
func (r *Result) Loss() float64 { return loss.TableLoss(r.measure, r.gen) }

// LossUnder returns the information loss under another measure.
func (r *Result) LossUnder(name MeasureName) (float64, error) {
	m, err := buildMeasure(r.table, name)
	if err != nil {
		return 0, err
	}
	return loss.TableLoss(m, r.gen), nil
}

// CandidateDiversity returns the minimum, over all original records, of
// the number of distinct sensitive values among the released records
// consistent with it — the first adversary's residual uncertainty about
// the target's sensitive attribute (≥ Options.Diversity when that was
// requested).
func (r *Result) CandidateDiversity() (int, error) {
	if r.table.sensitive == nil {
		return 0, fmt.Errorf("kanon: table has no sensitive attribute")
	}
	return core.MinCandidateDiversity(r.space, r.table.tbl, r.gen, r.table.sensitive)
}

// Row returns generalized record i rendered as strings.
func (r *Result) Row(i int) []string {
	out := make([]string, len(r.gen.Records[i]))
	for j, node := range r.gen.Records[i] {
		out[j] = dataio.GenValueString(r.gen.Schema.Attrs[j], r.table.hiers[j], node)
	}
	return out
}

// Len returns the number of generalized records.
func (r *Result) Len() int { return r.gen.Len() }

// WriteCSV writes the generalized table as CSV.
func (r *Result) WriteCSV(w io.Writer) error {
	return dataio.WriteGenCSV(w, r.gen, r.table.hiers)
}

// Discernibility returns the DM metric of the result (Σ of squared
// equivalence-class sizes).
func (r *Result) Discernibility() int { return loss.Discernibility(r.gen) }

// Verify checks the result against every anonymity notion for the given k
// and returns the report.
func (r *Result) Verify(k int) anonymity.Report {
	return anonymity.Check(r.space, r.table.tbl, r.gen, k)
}

// IsDistinctLDiverse reports whether the result's equivalence classes each
// contain at least l distinct sensitive values (only for tables carrying a
// sensitive attribute).
func (r *Result) IsDistinctLDiverse(l int) (bool, error) {
	if r.table.sensitive == nil {
		return false, fmt.Errorf("kanon: table has no sensitive attribute")
	}
	return anonymity.IsDistinctLDiverse(r.gen, r.table.sensitive, l)
}

// GroupSizes returns the sorted equivalence-class sizes of the generalized
// table.
func (r *Result) GroupSizes() []int { return r.gen.GroupSizes() }

// RiskSummary reports standard re-identification risk metrics for the
// release under a given adversary model.
type RiskSummary struct {
	// Journalist is the maximum per-record re-identification probability.
	Journalist float64
	// Marketer is the expected fraction of records an indiscriminate
	// linker re-identifies.
	Marketer float64
	// AtRisk counts records with fewer than k candidates.
	AtRisk int
}

// Risk computes re-identification risk for the release. model selects the
// adversary: "class" (equivalence classes, the classical view),
// "neighbors" (the paper's first adversary) or "matches" (the second
// adversary, perfect-matching analysis). k sets the AtRisk threshold.
func (r *Result) Risk(model string, k int) (RiskSummary, error) {
	var m risk.Model
	switch model {
	case "class":
		m = risk.ByClass
	case "neighbors":
		m = risk.ByNeighbors
	case "matches":
		m = risk.ByMatches
	default:
		return RiskSummary{}, fmt.Errorf("kanon: unknown risk model %q", model)
	}
	rep, err := risk.Assess(r.space, r.table.tbl, r.gen, m)
	if err != nil {
		return RiskSummary{}, err
	}
	return RiskSummary{
		Journalist: rep.Journalist,
		Marketer:   rep.Marketer,
		AtRisk:     rep.AtRiskCount(k),
	}, nil
}

// AttackVector summarizes one attack of the adversarial evaluation suite.
type AttackVector struct {
	// Attack names the attack: "matching" (the paper's second adversary),
	// "refinement" (candidate pruning from the release and hierarchies
	// alone) or "intersection" (repeated overlapping releases).
	Attack string
	// Vulnerable counts individuals whose candidate set fell below k, and
	// VulnerablePct is that count as a percentage of the population.
	Vulnerable    int
	VulnerablePct float64
	// MinCandidates is the smallest candidate set any individual retained.
	MinCandidates int
	// Exposed counts individuals whose sensitive value is disclosed
	// outright (homogeneous candidate set); zero without a sensitive
	// attribute.
	Exposed int
}

// AttackSummary is the combined adversarial evaluation of a release: three
// attacks plus the headline percentage of the population vulnerable to at
// least one of them.
type AttackSummary struct {
	K            int
	Records      int
	Matching     AttackVector
	Refinement   AttackVector
	Intersection AttackVector
	// VulnerableUnion and Score aggregate across attacks: the number and
	// percentage of individuals vulnerable to at least one attack.
	VulnerableUnion int
	Score           float64
}

// AttackEvaluation runs the full adversarial suite against the release:
// the matching attack of the paper's second adversary, the
// no-auxiliary-information refinement attack, and the repeated-release
// intersection attack over overlapping population windows. k sets the
// vulnerability threshold (an individual is vulnerable when an attack
// leaves it fewer than k candidates). The evaluation is deterministic.
func (r *Result) AttackEvaluation(k int) (AttackSummary, error) {
	rep, err := risk.EvaluateAttacks(r.space, r.table.tbl, r.gen, k, r.table.sensitive)
	if err != nil {
		return AttackSummary{}, err
	}
	vec := func(v risk.AttackVector) AttackVector {
		return AttackVector{
			Attack: v.Attack, Vulnerable: v.Vulnerable, VulnerablePct: v.VulnerablePct,
			MinCandidates: v.MinCandidates, Exposed: v.Exposed,
		}
	}
	return AttackSummary{
		K: rep.K, Records: rep.Records,
		Matching:     vec(rep.Matching),
		Refinement:   vec(rep.Refinement),
		Intersection: vec(rep.Intersection),

		VulnerableUnion: rep.VulnerableUnion,
		Score:           rep.Score,
	}, nil
}
