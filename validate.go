package kanon

import (
	"fmt"
	"strings"

	"kanon/internal/cluster"
)

// OptionsError reports a rejected Options field: which field, the value it
// held, and why it was rejected. Both CLIs print it so flag errors name the
// offending option.
type OptionsError struct {
	// Field is the Options field name (e.g. "K", "Notion").
	Field string
	// Value is the offending value.
	Value interface{}
	// Reason explains the rejection.
	Reason string
}

// Error implements error.
func (e *OptionsError) Error() string {
	return fmt.Sprintf("kanon: invalid Options.%s = %v: %s", e.Field, e.Value, e.Reason)
}

// optErr builds an *OptionsError.
func optErr(field string, value interface{}, reason string) *OptionsError {
	return &OptionsError{Field: field, Value: value, Reason: reason}
}

// constraintString renders a constraint list as the OptionsError value,
// matching the -constraint CLI syntax.
func constraintString(cons []Constraint) string {
	parts := make([]string, len(cons))
	for i, c := range cons {
		if c == nil {
			parts[i] = "<nil>"
			continue
		}
		parts[i] = c.String()
	}
	return strings.Join(parts, ",")
}

// Validate checks the options without running anything, returning a typed
// *OptionsError for the first problem found (nil when the options are
// usable). Zero values that select a documented default ("" Notion/Measure/
// Distance, 0 Workers/MaxChunk/Diversity) are valid. Anonymize and
// AnonymizeContext call Validate themselves; calling it separately lets a
// CLI reject a flag before loading any data.
func (opt Options) Validate() error {
	if opt.K < 1 {
		return optErr("K", opt.K, "the anonymity parameter must be ≥ 1")
	}
	switch opt.Notion {
	case "", NotionK, NotionKK, NotionGlobal1K:
	default:
		return optErr("Notion", opt.Notion, `unknown notion (want "k", "kk" or "global")`)
	}
	switch opt.Measure {
	case "", MeasureEntropy, MeasureMonotoneEntropy, MeasureLM, MeasureTree, MeasureSuppression:
	default:
		return optErr("Measure", opt.Measure,
			`unknown measure (want "entropy", "monotone-entropy", "lm", "tree" or "suppression")`)
	}
	if opt.Distance != "" && cluster.DistanceByName(opt.Distance) == nil {
		return optErr("Distance", opt.Distance, `unknown distance (want "d1".."d4" or "nc")`)
	}
	if opt.Forest && opt.FullDomain {
		return optErr("Forest", opt.Forest, "mutually exclusive with FullDomain")
	}
	if opt.Diversity >= 2 {
		if opt.Forest {
			return optErr("Diversity", opt.Diversity, "not supported with the forest baseline")
		}
		if opt.FullDomain {
			return optErr("Diversity", opt.Diversity, "not supported with the full-domain baseline")
		}
		if opt.MaxChunk > 0 {
			return optErr("Diversity", opt.Diversity, "cannot be combined with MaxChunk")
		}
		if opt.Notion == NotionGlobal1K {
			return optErr("Diversity", opt.Diversity,
				"not supported with NotionGlobal1K (the global pipeline ignores constraints; it would silently weaken the guarantee)")
		}
		if len(opt.Constraints) > 0 {
			return optErr("Constraints", constraintString(opt.Constraints),
				"conflicts with Diversity (its DistinctDiversity sugar); set one or the other")
		}
	}
	if len(opt.Constraints) > 0 {
		for i, c := range opt.Constraints {
			if c == nil {
				return optErr("Constraints", i, "nil constraint")
			}
			if err := c.validate(); err != nil {
				return optErr("Constraints", c.String(), err.Error())
			}
		}
		if opt.Forest {
			return optErr("Constraints", constraintString(opt.Constraints), "not supported with the forest baseline")
		}
		if opt.FullDomain {
			return optErr("Constraints", constraintString(opt.Constraints), "not supported with the full-domain baseline")
		}
		if opt.MaxChunk > 0 {
			return optErr("Constraints", constraintString(opt.Constraints), "cannot be combined with MaxChunk")
		}
		if opt.Notion == NotionGlobal1K {
			return optErr("Constraints", constraintString(opt.Constraints),
				"not supported with NotionGlobal1K (the global pipeline ignores constraints; it would silently weaken the guarantee)")
		}
	}
	if opt.ShardDeadline < 0 {
		return optErr("ShardDeadline", opt.ShardDeadline, "must be ≥ 0")
	}
	if opt.MaxChunk <= 0 {
		// The resilience surface configures the shard supervisor of the
		// partitioned pipeline; without MaxChunk there are no shards.
		if opt.RetryPolicy != nil {
			return optErr("RetryPolicy", opt.RetryPolicy, "requires the partitioned pipeline (set MaxChunk > 0)")
		}
		if opt.ShardDeadline > 0 {
			return optErr("ShardDeadline", opt.ShardDeadline, "requires the partitioned pipeline (set MaxChunk > 0)")
		}
		if opt.OnShard != nil {
			return optErr("OnShard", "func", "requires the partitioned pipeline (set MaxChunk > 0)")
		}
		if len(opt.CompletedShards) > 0 {
			return optErr("CompletedShards", len(opt.CompletedShards), "requires the partitioned pipeline (set MaxChunk > 0)")
		}
	}
	if rp := opt.RetryPolicy; rp != nil {
		if rp.MaxAttempts < 0 {
			return optErr("RetryPolicy", rp.MaxAttempts, "MaxAttempts must be ≥ 0 (0 selects the default)")
		}
		if rp.Backoff < 0 || rp.BackoffMax < 0 {
			return optErr("RetryPolicy", rp.Backoff, "backoff durations must be ≥ 0")
		}
		if rp.Backoff > 0 && rp.BackoffMax > 0 && rp.BackoffMax < rp.Backoff {
			return optErr("RetryPolicy", rp.BackoffMax, "BackoffMax below Backoff")
		}
	}
	return nil
}
