package kanon

import "testing"

// attackGolden pins the vulnerable-population counts of one adversarial
// evaluation. All attacks are deterministic, so any drift here is an
// algorithmic change: intentional privacy-relevant changes must update
// the constants (see the update procedure below), unintentional ones are
// silent privacy regressions — exactly what this harness exists to catch.
type attackGolden struct {
	Matching, Refinement, Intersection, Union int
	MatchingMin                               int // minimum matching candidate-set size
}

// TestAttackRegression is the attack-regression harness: golden risk
// numbers per {dataset, algorithm, k} over fixed seeds. It runs in CI
// under -race (see .github/workflows/ci.yml, job attack-regression).
//
// Update procedure: when an intentional change shifts these numbers, set
// the case's want pointer to nil, run
//
//	go test -run TestAttackRegression -v .
//
// and copy the logged actuals back into the table. Any increase in a
// Vulnerable count or decrease in MatchingMin weakens privacy and needs a
// written justification in the PR description.
func TestAttackRegression(t *testing.T) {
	art := ART(250, 12345)
	adult := Adult(300, 99)
	cmc := CMC(200, 7)
	cases := []struct {
		name string
		tbl  *Table
		opt  Options
		want *attackGolden // nil = bootstrap mode: log actuals
	}{
		{"ART-k5-k-anon", art, Options{K: 5, Notion: NotionK},
			&attackGolden{Matching: 0, Refinement: 0, Intersection: 55, Union: 55, MatchingMin: 5}},
		// The (k,k) rows document the paper's core finding: (k,k)-anonymity
		// does NOT defeat the second adversary — the matching attack prunes
		// 35 of 250 ART records below k (min candidate set 1), while the
		// global (1,k) upgrade of the same release pins matching at 0.
		{"ART-k5-kk", art, Options{K: 5, Notion: NotionKK},
			&attackGolden{Matching: 35, Refinement: 0, Intersection: 36, Union: 66, MatchingMin: 1}},
		{"ART-k5-global", art, Options{K: 5, Notion: NotionGlobal1K},
			&attackGolden{Matching: 0, Refinement: 0, Intersection: 29, Union: 29, MatchingMin: 5}},
		{"ART-k5-k-d1", art, Options{K: 5, Notion: NotionK, Distance: "d1"},
			&attackGolden{Matching: 0, Refinement: 0, Intersection: 96, Union: 96, MatchingMin: 5}},
		{"ART-k10-kk", art, Options{K: 10, Notion: NotionKK},
			&attackGolden{Matching: 5, Refinement: 0, Intersection: 101, Union: 104, MatchingMin: 6}},
		{"ADT-k6-k-anon", adult, Options{K: 6, Notion: NotionK},
			&attackGolden{Matching: 0, Refinement: 0, Intersection: 13, Union: 13, MatchingMin: 6}},
		{"ADT-k6-global", adult, Options{K: 6, Notion: NotionGlobal1K},
			&attackGolden{Matching: 0, Refinement: 0, Intersection: 89, Union: 89, MatchingMin: 6}},
		{"CMC-k4-kk", cmc, Options{K: 4, Notion: NotionKK},
			&attackGolden{Matching: 120, Refinement: 0, Intersection: 94, Union: 149, MatchingMin: 1}},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			res, err := Anonymize(c.tbl, c.opt)
			if err != nil {
				t.Fatal(err)
			}
			sum, err := res.AttackEvaluation(c.opt.K)
			if err != nil {
				t.Fatal(err)
			}
			got := attackGolden{
				Matching:     sum.Matching.Vulnerable,
				Refinement:   sum.Refinement.Vulnerable,
				Intersection: sum.Intersection.Vulnerable,
				Union:        sum.VulnerableUnion,
				MatchingMin:  sum.Matching.MinCandidates,
			}
			if c.want == nil {
				// Bootstrap mode: print the values to fill in.
				t.Logf("%s: %+v", c.name, got)
				return
			}
			if got != *c.want {
				t.Errorf("risk numbers drifted (privacy regression?)\n  got  %+v\n  want %+v", got, *c.want)
			}
			// Structural invariants that hold regardless of the constants.
			if sum.Records != c.tbl.Len() {
				t.Errorf("report covers %d records, want %d", sum.Records, c.tbl.Len())
			}
			// Only global (1,k)-anonymity promises safety against the
			// matching attack (Theorem 4.7 direction); (k,k) releases may
			// legitimately be breached — that gap is the paper's thesis.
			if c.opt.Notion == NotionGlobal1K && got.Matching != 0 {
				t.Errorf("matching attack breached a %s release: %d vulnerable", c.opt.Notion, got.Matching)
			}
		})
	}
}

// TestAttackRegressionCatchesWeakening proves the harness has teeth: a
// release that silently provides less privacy than claimed — here a k=2
// release evaluated against the k=6 it pretends to offer — must report a
// strictly positive vulnerable population, so the golden comparison above
// fails loudly rather than certifying the weakened release.
func TestAttackRegressionCatchesWeakening(t *testing.T) {
	tbl := ART(120, 3)
	res, err := Anonymize(tbl, Options{K: 2, Notion: NotionGlobal1K})
	if err != nil {
		t.Fatal(err)
	}
	sum, err := res.AttackEvaluation(6)
	if err != nil {
		t.Fatal(err)
	}
	if sum.Matching.Vulnerable == 0 {
		t.Error("matching attack failed to flag the under-provisioned release")
	}
	if sum.VulnerableUnion == 0 || sum.Score == 0 {
		t.Errorf("weakened release scored %v with %d vulnerable, want > 0",
			sum.Score, sum.VulnerableUnion)
	}
	// The honest evaluation at the provided k stays clean — global
	// (1,2)-anonymity guarantees matching candidate sets of size ≥ 2 — so
	// the signal above is the weakening, not noise.
	honest, err := res.AttackEvaluation(2)
	if err != nil {
		t.Fatal(err)
	}
	if honest.Matching.Vulnerable != 0 {
		t.Errorf("honest k=2 evaluation reports %d matching-vulnerable", honest.Matching.Vulnerable)
	}
}
