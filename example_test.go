package kanon_test

import (
	"fmt"
	"log"
	"strings"

	"kanon"
)

// ExampleAnonymize demonstrates the one-call API: load a CSV, install
// hierarchies, release a (k,k)-anonymization.
func ExampleAnonymize() {
	csvData := `age,city
30,haifa
31,haifa
32,haifa
40,eilat
41,eilat
42,eilat
`
	hierData := `{"attributes": [
	  {"attribute": "age", "subsets": [
	    {"label": "30s", "values": ["30","31","32"]},
	    {"label": "40s", "values": ["40","41","42"]}
	  ]}
	]}`

	tbl, err := kanon.LoadCSV(strings.NewReader(csvData), true)
	if err != nil {
		log.Fatal(err)
	}
	if err := tbl.SetHierarchiesJSON(strings.NewReader(hierData)); err != nil {
		log.Fatal(err)
	}
	res, err := kanon.Anonymize(tbl, kanon.Options{K: 3, Notion: kanon.NotionKK})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(strings.Join(res.Row(0), ","))
	fmt.Println(strings.Join(res.Row(3), ","))
	// Output:
	// 30s,haifa
	// 40s,eilat
}

// ExampleResult_Verify shows definition-level certification of a release.
func ExampleResult_Verify() {
	tbl := kanon.ART(100, 7)
	res, err := kanon.Anonymize(tbl, kanon.Options{K: 5, Notion: kanon.NotionGlobal1K})
	if err != nil {
		log.Fatal(err)
	}
	rep := res.Verify(5)
	fmt.Println(rep.KK, rep.Global1K)
	// Output:
	// true true
}

// ExampleTable_SetSensitive shows attaching a sensitive attribute and
// requesting an ℓ-diverse release.
func ExampleTable_SetSensitive() {
	csvData := "zip\n10001\n10002\n10003\n10004\n10005\n10006\n"
	tbl, err := kanon.LoadCSV(strings.NewReader(csvData), true)
	if err != nil {
		log.Fatal(err)
	}
	if err := tbl.SetSensitive("diagnosis", []string{"flu", "cancer", "flu", "cancer", "flu", "cancer"}); err != nil {
		log.Fatal(err)
	}
	res, err := kanon.Anonymize(tbl, kanon.Options{K: 2, Notion: kanon.NotionKK, Diversity: 2})
	if err != nil {
		log.Fatal(err)
	}
	div, err := res.CandidateDiversity()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(div >= 2)
	// Output:
	// true
}
