package kanon

import (
	"fmt"
	"strconv"
	"strings"

	"kanon/internal/cluster"
	"kanon/internal/table"
)

// Constraint is a privacy constraint on the sensitive attribute, enforced
// on top of the anonymity notion: for NotionK every equivalence class of
// the release, and for NotionKK every record's candidate set, must satisfy
// it. Construct constraints with DistinctDiversity, EntropyDiversity,
// RecursiveDiversity and Closeness (or parse CLI specs with
// ParseConstraints) and set Options.Constraints; Options.Diversity remains
// sugar for a single DistinctDiversity. The interface is sealed — the
// engine-level evaluation contract lives in internal/cluster.
type Constraint interface {
	// String names the constraint with its parameters (e.g. "distinct=3"),
	// for reports, error messages and the -constraint CLI flag syntax.
	String() string

	// validate checks the parameters without a table, for Options.Validate.
	validate() error
	// build binds the constraint to a table's sensitive attribute,
	// producing the engine-level constraint.
	build(t *Table) (cluster.Constraint, error)
}

// DistinctDiversity returns distinct ℓ-diversity: at least l distinct
// sensitive values per equivalence class (Machanavajjhala et al.).
// Options.Constraints = [DistinctDiversity(l)] is exactly equivalent to
// Options.Diversity = l, byte for byte.
func DistinctDiversity(l int) Constraint { return distinctC{l} }

// EntropyDiversity returns entropy ℓ-diversity: the Shannon entropy of
// each class's sensitive distribution must be at least log l. l may be
// fractional.
func EntropyDiversity(l float64) Constraint { return entropyC{l} }

// RecursiveDiversity returns recursive (c,ℓ)-diversity: with each class's
// sensitive-value counts sorted descending r₁ ≥ … ≥ r_m, require
// r₁ < c·(r_ℓ + … + r_m).
func RecursiveDiversity(c float64, l int) Constraint { return recursiveC{c, l} }

// Closeness returns t-closeness (Li, Li, Venkatasubramanian): the
// earth-mover's distance between each class's sensitive distribution and
// the whole table's must not exceed tc. The ground metric is chosen from
// the sensitive domain: when every sensitive value parses as a number the
// ordered 1-D ground (position gaps normalized by the range) applies,
// otherwise the equal ground (total variation).
func Closeness(tc float64) Constraint { return closenessC{tc} }

type distinctC struct{ l int }

func (c distinctC) String() string { return fmt.Sprintf("distinct=%d", c.l) }
func (c distinctC) validate() error {
	if c.l < 2 {
		return fmt.Errorf("distinct diversity needs l ≥ 2, got %d", c.l)
	}
	return nil
}
func (c distinctC) build(*Table) (cluster.Constraint, error) {
	return cluster.DistinctLDiversity(c.l), nil
}

type entropyC struct{ l float64 }

func (c entropyC) String() string { return fmt.Sprintf("entropy=%g", c.l) }
func (c entropyC) validate() error {
	if !(c.l > 1) {
		return fmt.Errorf("entropy diversity needs l > 1, got %g", c.l)
	}
	return nil
}
func (c entropyC) build(*Table) (cluster.Constraint, error) {
	return cluster.EntropyLDiversity(c.l), nil
}

type recursiveC struct {
	c float64
	l int
}

func (c recursiveC) String() string { return fmt.Sprintf("recursive=%g/%d", c.c, c.l) }
func (c recursiveC) validate() error {
	if !(c.c > 0) {
		return fmt.Errorf("recursive diversity needs c > 0, got %g", c.c)
	}
	if c.l < 2 {
		return fmt.Errorf("recursive diversity needs l ≥ 2, got %d", c.l)
	}
	return nil
}
func (c recursiveC) build(*Table) (cluster.Constraint, error) {
	return cluster.RecursiveCL(c.c, c.l), nil
}

type closenessC struct{ t float64 }

func (c closenessC) String() string { return fmt.Sprintf("tclose=%g", c.t) }
func (c closenessC) validate() error {
	if c.t < 0 || c.t > 1 {
		return fmt.Errorf("t-closeness needs t in [0,1], got %g", c.t)
	}
	return nil
}
func (c closenessC) build(t *Table) (cluster.Constraint, error) {
	// Ordered ground when the whole sensitive domain is numeric; equal
	// ground (total variation) otherwise.
	pos := make([]float64, len(t.sensitiveValues))
	numeric := len(pos) > 0
	for i, v := range t.sensitiveValues {
		f, err := strconv.ParseFloat(strings.TrimSpace(v), 64)
		if err != nil {
			numeric = false
			break
		}
		pos[i] = f
	}
	if numeric {
		return cluster.TClosenessOrdered(c.t, pos), nil
	}
	return cluster.TCloseness(c.t), nil
}

// ParseConstraints parses a comma-separated constraint specification, the
// syntax of the CLIs' -constraint flag:
//
//	distinct=3              distinct 3-diversity
//	entropy=2.5             entropy 2.5-diversity
//	recursive=3/2           recursive (3,2)-diversity
//	tclose=0.2              0.2-closeness
//
// e.g. "distinct=3,tclose=0.25". Parameters are validated (the same checks
// Options.Validate applies).
func ParseConstraints(spec string) ([]Constraint, error) {
	var out []Constraint
	for _, part := range strings.Split(spec, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		name, arg, ok := strings.Cut(part, "=")
		if !ok {
			return nil, fmt.Errorf("kanon: constraint %q: want name=value (distinct=L, entropy=L, recursive=C/L, tclose=T)", part)
		}
		var c Constraint
		switch name {
		case "distinct":
			l, err := strconv.Atoi(arg)
			if err != nil {
				return nil, fmt.Errorf("kanon: constraint %q: %v", part, err)
			}
			c = DistinctDiversity(l)
		case "entropy":
			l, err := strconv.ParseFloat(arg, 64)
			if err != nil {
				return nil, fmt.Errorf("kanon: constraint %q: %v", part, err)
			}
			c = EntropyDiversity(l)
		case "recursive":
			cs, ls, ok := strings.Cut(arg, "/")
			if !ok {
				return nil, fmt.Errorf("kanon: constraint %q: want recursive=C/L", part)
			}
			cv, err := strconv.ParseFloat(cs, 64)
			if err != nil {
				return nil, fmt.Errorf("kanon: constraint %q: %v", part, err)
			}
			lv, err := strconv.Atoi(ls)
			if err != nil {
				return nil, fmt.Errorf("kanon: constraint %q: %v", part, err)
			}
			c = RecursiveDiversity(cv, lv)
		case "tclose":
			tv, err := strconv.ParseFloat(arg, 64)
			if err != nil {
				return nil, fmt.Errorf("kanon: constraint %q: %v", part, err)
			}
			c = Closeness(tv)
		default:
			return nil, fmt.Errorf("kanon: unknown constraint %q (want distinct, entropy, recursive or tclose)", name)
		}
		if err := c.validate(); err != nil {
			return nil, fmt.Errorf("kanon: constraint %q: %v", part, err)
		}
		out = append(out, c)
	}
	return out, nil
}

// effectiveConstraints resolves the run's constraint list: the Diversity
// sugar (a single DistinctDiversity) followed by Options.Constraints.
// Validate rejects setting both.
func effectiveConstraints(opt Options) []Constraint {
	var cons []Constraint
	if opt.Diversity >= 2 {
		cons = append(cons, DistinctDiversity(opt.Diversity))
	}
	return append(cons, opt.Constraints...)
}

// buildConstraints binds the facade constraints to the table, yielding the
// engine-level constraint list.
func buildConstraints(t *Table, cons []Constraint) ([]cluster.Constraint, error) {
	if len(cons) == 0 {
		return nil, nil
	}
	out := make([]cluster.Constraint, len(cons))
	for i, c := range cons {
		cc, err := c.build(t)
		if err != nil {
			return nil, err
		}
		out[i] = cc
	}
	return out, nil
}

// ConstraintStatus audits one constraint against a release's equivalence
// classes.
type ConstraintStatus struct {
	// Constraint is the engine-level constraint name (e.g. "distinct(l=3)").
	Constraint string
	// Satisfied reports whether every equivalence class satisfies the
	// constraint; Violations counts the classes that do not.
	Satisfied  bool
	Violations int
	// Classes is the number of equivalence classes audited.
	Classes int
	// MinMetric and MaxMetric bound the constraint's per-class scalar
	// (distinct-value count, effective ℓ, recursive ratio, or EMD) across
	// all classes. Zero for an empty release.
	MinMetric, MaxMetric float64
}

// ConstraintReport audits the release's equivalence classes against the
// run's constraints (the Diversity sugar included), returning one status
// per constraint in option order. Classes are the groups of identical
// generalized records, in first-appearance order.
//
// For NotionK the engine enforces constraints per equivalence class, so
// every status reports Satisfied (leftover absorption under a
// non-monotone constraint is best-effort — a violation there is surfaced
// here rather than hidden). For NotionKK the binding guarantee is on
// per-record candidate sets, a weaker surface than equivalence classes;
// this report is the stricter class-level audit and may count violations
// even though every candidate set satisfies the constraint.
func (r *Result) ConstraintReport() ([]ConstraintStatus, error) {
	cons := effectiveConstraints(r.opt)
	if len(cons) == 0 {
		return nil, nil
	}
	if r.table.sensitive == nil {
		return nil, fmt.Errorf("kanon: table has no sensitive attribute")
	}
	built, err := buildConstraints(r.table, cons)
	if err != nil {
		return nil, err
	}
	classes := equivalenceClasses(r.gen)
	out := make([]ConstraintStatus, 0, len(built))
	for _, cc := range built {
		st := ConstraintStatus{Constraint: cc.String(), Satisfied: true, Classes: len(classes)}
		if cc.Trivial() {
			out = append(out, st)
			continue
		}
		b, err := cc.Bind(r.table.sensitive)
		if err != nil {
			return nil, err
		}
		for ci, members := range classes {
			b.Reset()
			for _, ri := range members {
				b.Add(ri)
			}
			m := b.Metric()
			if ci == 0 || m < st.MinMetric {
				st.MinMetric = m
			}
			if ci == 0 || m > st.MaxMetric {
				st.MaxMetric = m
			}
			if !b.Satisfied() {
				st.Satisfied = false
				st.Violations++
			}
		}
		out = append(out, st)
	}
	return out, nil
}

// equivalenceClasses groups record indices by identical generalized
// records, in first-appearance order.
func equivalenceClasses(g *table.GenTable) [][]int {
	index := make(map[string]int)
	var classes [][]int
	var key strings.Builder
	for i, rec := range g.Records {
		key.Reset()
		for _, node := range rec {
			fmt.Fprintf(&key, "%d,", node)
		}
		k := key.String()
		ci, ok := index[k]
		if !ok {
			ci = len(classes)
			index[k] = ci
			classes = append(classes, nil)
		}
		classes[ci] = append(classes[ci], i)
	}
	return classes
}
