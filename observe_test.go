package kanon

import (
	"errors"
	"strings"
	"sync"
	"testing"
	"time"
)

// captureObserver records every event it sees; safe for concurrent use as
// the Observer contract requires.
type captureObserver struct {
	mu     sync.Mutex
	events []RunEvent
}

func (c *captureObserver) Record(e RunEvent) {
	c.mu.Lock()
	c.events = append(c.events, e)
	c.mu.Unlock()
}

func (c *captureObserver) snapshot() []RunEvent {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]RunEvent, len(c.events))
	copy(out, c.events)
	return out
}

// stripT zeroes the monotonic offsets so sequences can be compared
// structurally.
func stripT(events []RunEvent) []RunEvent {
	out := make([]RunEvent, len(events))
	for i, e := range events {
		e.T = 0
		out[i] = e
	}
	return out
}

// observedOptions is the notion matrix the observer tests sweep: every
// pipeline the facade can dispatch to.
func observedOptions() map[string]Options {
	return map[string]Options{
		"k-agglomerative": {K: 5, Notion: NotionK},
		"k-partitioned":   {K: 5, Notion: NotionK, MaxChunk: 60},
		"kk":              {K: 5, Notion: NotionKK},
		"global":          {K: 5, Notion: NotionGlobal1K},
	}
}

// TestObserverEventSnapshotDeterministic runs every notion twice at
// Workers:1 and requires byte-identical event sequences (ignoring the
// monotonic offsets): with a sequential engine the event stream is a
// deterministic function of the input.
func TestObserverEventSnapshotDeterministic(t *testing.T) {
	for name, opt := range observedOptions() {
		t.Run(name, func(t *testing.T) {
			opt.Workers = 1
			tbl := Adult(150, 7)
			var seqs [][]RunEvent
			for round := 0; round < 2; round++ {
				rec := &captureObserver{}
				opt.Observer = rec
				if _, err := Anonymize(tbl, opt); err != nil {
					t.Fatal(err)
				}
				seqs = append(seqs, stripT(rec.snapshot()))
			}
			if len(seqs[0]) == 0 {
				t.Fatal("no events emitted")
			}
			if len(seqs[0]) != len(seqs[1]) {
				t.Fatalf("event counts differ between identical runs: %d vs %d", len(seqs[0]), len(seqs[1]))
			}
			for i := range seqs[0] {
				if seqs[0][i] != seqs[1][i] {
					t.Fatalf("event %d differs between identical runs:\n  %+v\n  %+v", i, seqs[0][i], seqs[1][i])
				}
			}
			// Phase brackets must balance: every start has a matching end.
			open := make(map[string]int)
			for _, e := range seqs[0] {
				switch e.Kind {
				case EventPhaseStart:
					open[e.Phase]++
				case EventPhaseEnd:
					open[e.Phase]--
					if open[e.Phase] < 0 {
						t.Fatalf("phase %q ended before it started", e.Phase)
					}
				}
			}
			for phase, n := range open {
				if n != 0 {
					t.Errorf("phase %q left %d brackets open", phase, n)
				}
			}
		})
	}
}

// TestStatsWorkerInvariance is the acceptance check of the unified stats
// surface: counter totals and peaks are identical at Workers:1 and
// Workers:8 for the same input, for every notion. Only wall times and the
// Sched gauges may differ.
func TestStatsWorkerInvariance(t *testing.T) {
	for name, opt := range observedOptions() {
		t.Run(name, func(t *testing.T) {
			tbl := Adult(150, 7)
			var stats []RunStats
			for _, workers := range []int{1, 8} {
				o := opt
				o.Workers = workers
				res, err := Anonymize(tbl, o)
				if err != nil {
					t.Fatal(err)
				}
				stats = append(stats, res.Stats())
			}
			s1, s8 := stats[0], stats[1]
			if len(s1.Counters) == 0 {
				t.Fatal("no counters recorded")
			}
			for k, v := range s1.Counters {
				if s8.Counters[k] != v {
					t.Errorf("counter %s: %d at Workers:1, %d at Workers:8", k, v, s8.Counters[k])
				}
			}
			for k := range s8.Counters {
				if _, ok := s1.Counters[k]; !ok {
					t.Errorf("counter %s only present at Workers:8", k)
				}
			}
			for k, v := range s1.Peaks {
				if s8.Peaks[k] != v {
					t.Errorf("peak %s: %d at Workers:1, %d at Workers:8", k, v, s8.Peaks[k])
				}
			}
			if s1.Workers != 1 || s8.Workers != 8 {
				t.Errorf("Workers fields = %d, %d; want 1, 8", s1.Workers, s8.Workers)
			}
			if s1.Records != tbl.Len() || s1.Notion != string(opt.Notion) {
				t.Errorf("run identity = %q/%d, want %q/%d", s1.Notion, s1.Records, opt.Notion, tbl.Len())
			}
		})
	}
}

// TestStatsPopulated checks that every facade run carries stats — phases
// with wall time, a positive event count — without any Observer set.
func TestStatsPopulated(t *testing.T) {
	tbl := loadFacadeTable(t)
	res, err := Anonymize(tbl, Options{K: 3, Notion: NotionKK})
	if err != nil {
		t.Fatal(err)
	}
	st := res.Stats()
	if st.Events == 0 {
		t.Fatal("Stats().Events = 0; the facade should always aggregate")
	}
	if len(st.Phases) == 0 {
		t.Fatal("no phases recorded")
	}
	if st.Phase("core.k1").Starts == 0 {
		t.Error("core.k1 phase missing from a (k,k) run")
	}
	if st.WallNanos <= 0 {
		t.Error("WallNanos not positive")
	}
	if !strings.Contains(st.JSON(), `"counters"`) {
		t.Errorf("JSON rendering lacks counters: %s", st.JSON())
	}
}

// TestGlobalCountersSurvivedDeprecation pins the completed deprecation:
// Result.UpgradeStats is gone (kanonlint's deprecated-API analyzer forbids
// reintroducing it), and the core.global.* counters of Stats() — its
// documented replacement — still carry the Algorithm 6 work summary for a
// global run.
func TestGlobalCountersSurvivedDeprecation(t *testing.T) {
	tbl := Adult(120, 3)
	res, err := Anonymize(tbl, Options{K: 6, Notion: NotionGlobal1K})
	if err != nil {
		t.Fatal(err)
	}
	st := res.Stats()
	if st.Phase("core.global").Starts == 0 {
		t.Error("core.global phase missing from a global run")
	}
	if st.Counter("core.global.steps") < 0 || st.Counter("core.global.deficient") < 0 {
		t.Errorf("core.global counters negative: steps=%d deficient=%d",
			st.Counter("core.global.steps"), st.Counter("core.global.deficient"))
	}
}

// TestValidateOptions exercises the typed validation surface directly.
func TestValidateOptions(t *testing.T) {
	valid := []Options{
		{K: 1},
		{K: 2, Notion: NotionKK, Measure: MeasureLM, Distance: "d1"},
		{K: 3, Notion: NotionK, MaxChunk: 100, Workers: 4},
		{K: 3, Notion: NotionK, Forest: true},
		{K: 3, Notion: NotionKK, Diversity: 2},
		{K: 3, MaxChunk: 100, RetryPolicy: DefaultRetryPolicy()},
		{K: 3, MaxChunk: 100, RetryPolicy: &RetryPolicy{MaxAttempts: 5, Backoff: time.Millisecond, BackoffMax: time.Second}},
		{K: 3, MaxChunk: 100, ShardDeadline: time.Minute},
		{K: 3, MaxChunk: 100, OnShard: func(ShardCheckpoint) {}},
		{K: 3, MaxChunk: 100, CompletedShards: []ShardCheckpoint{{Shard: 0}}},
	}
	for _, opt := range valid {
		if err := opt.Validate(); err != nil {
			t.Errorf("Validate(%+v) = %v, want nil", opt, err)
		}
	}
	invalid := []struct {
		opt   Options
		field string
	}{
		{Options{K: 0}, "K"},
		{Options{K: -3}, "K"},
		{Options{K: 2, Notion: "bogus"}, "Notion"},
		{Options{K: 2, Measure: "bogus"}, "Measure"},
		{Options{K: 2, Distance: "bogus"}, "Distance"},
		{Options{K: 2, Forest: true, FullDomain: true}, "Forest"},
		{Options{K: 2, Forest: true, Diversity: 2}, "Diversity"},
		{Options{K: 2, FullDomain: true, Diversity: 2}, "Diversity"},
		{Options{K: 2, MaxChunk: 50, Diversity: 2}, "Diversity"},
		{Options{K: 2, ShardDeadline: -time.Second}, "ShardDeadline"},
		{Options{K: 2, RetryPolicy: DefaultRetryPolicy()}, "RetryPolicy"},
		{Options{K: 2, ShardDeadline: time.Minute}, "ShardDeadline"},
		{Options{K: 2, OnShard: func(ShardCheckpoint) {}}, "OnShard"},
		{Options{K: 2, CompletedShards: []ShardCheckpoint{{Shard: 0}}}, "CompletedShards"},
		{Options{K: 2, MaxChunk: 50, RetryPolicy: &RetryPolicy{MaxAttempts: -1}}, "RetryPolicy"},
		{Options{K: 2, MaxChunk: 50, RetryPolicy: &RetryPolicy{Backoff: -time.Second}}, "RetryPolicy"},
		{Options{K: 2, MaxChunk: 50, RetryPolicy: &RetryPolicy{Backoff: time.Second, BackoffMax: time.Millisecond}}, "RetryPolicy"},
	}
	for _, tc := range invalid {
		err := tc.opt.Validate()
		if err == nil {
			t.Errorf("Validate(%+v) = nil, want *OptionsError", tc.opt)
			continue
		}
		var oe *OptionsError
		if !errors.As(err, &oe) {
			t.Errorf("Validate(%+v) returned %T, want *OptionsError", tc.opt, err)
			continue
		}
		if oe.Field != tc.field {
			t.Errorf("Validate(%+v).Field = %q, want %q", tc.opt, oe.Field, tc.field)
		}
		if !strings.Contains(oe.Error(), "Options."+tc.field) {
			t.Errorf("error text %q does not name the field", oe.Error())
		}
	}
	// Anonymize surfaces the same typed error.
	tbl := loadFacadeTable(t)
	_, err := Anonymize(tbl, Options{K: 0})
	var oe *OptionsError
	if !errors.As(err, &oe) || oe.Field != "K" {
		t.Errorf("Anonymize(K:0) error = %v, want *OptionsError on K", err)
	}
}

// TestAnonymizeNilContext pins the documented nil-ctx contract: a nil
// context behaves exactly like context.Background().
func TestAnonymizeNilContext(t *testing.T) {
	tbl := loadFacadeTable(t)
	res, err := AnonymizeContext(nil, tbl, Options{K: 3})
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats().Events == 0 {
		t.Error("nil-ctx run carried no stats")
	}
}
