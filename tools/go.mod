// Tool-dependency module (the nested-module "tools pattern"): pins the
// versions of developer/CI binaries without adding anything to the main
// module's dependency graph, which stays stdlib-only and offline-buildable.
// CI installs from here with:
//
//	cd tools && go mod tidy && go install honnef.co/go/tools/cmd/staticcheck golang.org/x/vuln/cmd/govulncheck
module kanon/tools

go 1.22

require (
	golang.org/x/vuln v1.1.3
	honnef.co/go/tools v0.5.1
)
