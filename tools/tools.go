//go:build tools

// Package tools records the repository's pinned tool dependencies
// (staticcheck, govulncheck) so `go mod tidy` keeps their versions in
// go.mod/go.sum. The build tag keeps the imports out of every real build;
// this module is not part of the main module's workspace.
package tools

import (
	_ "golang.org/x/vuln/cmd/govulncheck"
	_ "honnef.co/go/tools/cmd/staticcheck"
)
