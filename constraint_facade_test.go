package kanon

import (
	"errors"
	"fmt"
	"strings"
	"testing"
)

func TestParseConstraints(t *testing.T) {
	cons, err := ParseConstraints("distinct=3, entropy=2.5,recursive=3/2,tclose=0.25")
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"distinct=3", "entropy=2.5", "recursive=3/2", "tclose=0.25"}
	if len(cons) != len(want) {
		t.Fatalf("parsed %d constraints, want %d", len(cons), len(want))
	}
	for i, c := range cons {
		if c.String() != want[i] {
			t.Errorf("constraint %d = %q, want %q", i, c, want[i])
		}
	}
	if cons, err := ParseConstraints(""); err != nil || len(cons) != 0 {
		t.Errorf("empty spec: %v, %d constraints", err, len(cons))
	}
	bad := []string{
		"distinct",        // no value
		"distinct=x",      // non-integer
		"distinct=1",      // parameter out of range
		"entropy=1",       // l must exceed 1
		"recursive=3",     // missing /L
		"recursive=0/2",   // c out of range
		"recursive=2/1",   // l out of range
		"tclose=1.5",      // t out of range
		"tclose=-0.1",     // t out of range
		"anonymity=3",     // unknown name
		"distinct=3,,bad", // malformed tail element
	}
	for _, spec := range bad {
		if _, err := ParseConstraints(spec); err == nil {
			t.Errorf("ParseConstraints(%q) accepted", spec)
		}
	}
}

func TestConstraintOptionsValidation(t *testing.T) {
	cases := []struct {
		opt   Options
		field string
	}{
		{Options{K: 2, Diversity: 2, Constraints: []Constraint{Closeness(0.3)}}, "Constraints"},
		{Options{K: 2, Constraints: []Constraint{nil}}, "Constraints"},
		{Options{K: 2, Constraints: []Constraint{DistinctDiversity(1)}}, "Constraints"},
		{Options{K: 2, Constraints: []Constraint{EntropyDiversity(1)}}, "Constraints"},
		{Options{K: 2, Constraints: []Constraint{RecursiveDiversity(0, 2)}}, "Constraints"},
		{Options{K: 2, Constraints: []Constraint{Closeness(1.5)}}, "Constraints"},
		{Options{K: 2, Forest: true, Constraints: []Constraint{Closeness(0.3)}}, "Constraints"},
		{Options{K: 2, FullDomain: true, Constraints: []Constraint{Closeness(0.3)}}, "Constraints"},
		{Options{K: 2, MaxChunk: 50, Constraints: []Constraint{Closeness(0.3)}}, "Constraints"},
		{Options{K: 2, Notion: NotionGlobal1K, Constraints: []Constraint{Closeness(0.3)}}, "Constraints"},
		{Options{K: 2, Notion: NotionGlobal1K, Diversity: 2}, "Diversity"},
	}
	for _, tc := range cases {
		err := tc.opt.Validate()
		var oe *OptionsError
		if !errors.As(err, &oe) {
			t.Errorf("Validate(%+v) = %v, want *OptionsError", tc.opt, err)
			continue
		}
		if oe.Field != tc.field {
			t.Errorf("Validate(%+v).Field = %q, want %q", tc.opt, oe.Field, tc.field)
		}
	}
	good := []Options{
		{K: 2, Constraints: []Constraint{DistinctDiversity(2), Closeness(0.4)}},
		{K: 2, Notion: NotionKK, Constraints: []Constraint{EntropyDiversity(1.5)}},
		{K: 2, Diversity: 2}, // sugar alone stays valid
	}
	for _, opt := range good {
		if err := opt.Validate(); err != nil {
			t.Errorf("Validate(%+v) = %v, want nil", opt, err)
		}
	}
}

func TestAnonymizeWithConstraints(t *testing.T) {
	tbl := ART(150, 11)
	cases := [][]Constraint{
		{EntropyDiversity(1.8)},
		{RecursiveDiversity(4, 2)},
		{Closeness(0.5)},
		{DistinctDiversity(2), Closeness(0.6)},
	}
	for _, cons := range cases {
		name := constraintString(cons)
		res, err := Anonymize(tbl, Options{K: 4, Notion: NotionK, Constraints: cons})
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if !res.Verify(4).KAnonymous {
			t.Errorf("%s: release not 4-anonymous", name)
		}
		report, err := res.ConstraintReport()
		if err != nil {
			t.Fatalf("%s: report: %v", name, err)
		}
		if len(report) != len(cons) {
			t.Fatalf("%s: report has %d entries, want %d", name, len(report), len(cons))
		}
		for _, st := range report {
			if !st.Satisfied || st.Violations != 0 {
				t.Errorf("%s: %s not satisfied (%d violations over %d classes)",
					name, st.Constraint, st.Violations, st.Classes)
			}
			if st.Classes == 0 {
				t.Errorf("%s: %s audited no classes", name, st.Constraint)
			}
		}
	}
	// Constraints without a sensitive attribute are rejected up front.
	plain := loadFacadeTable(t)
	if _, err := Anonymize(plain, Options{K: 2, Constraints: []Constraint{Closeness(0.3)}}); err == nil {
		t.Error("expected sensitive-attribute error")
	}
	// Unattainable parameters surface the engine's infeasibility error.
	_, err := Anonymize(tbl, Options{K: 2, Constraints: []Constraint{DistinctDiversity(40)}})
	if err == nil || !strings.Contains(err.Error(), "unattainable") {
		t.Errorf("infeasible distinct=40: %v", err)
	}
	// Same infeasibility on the (k,k) pipeline.
	_, err = Anonymize(tbl, Options{K: 2, Notion: NotionKK, Constraints: []Constraint{DistinctDiversity(40)}})
	if err == nil || !strings.Contains(err.Error(), "unattainable") {
		t.Errorf("infeasible distinct=40 under (k,k): %v", err)
	}
}

// TestConstraintsOnKK checks the candidate-set guarantee: under NotionKK
// with a diversity constraint, every record's candidate set satisfies it
// (CandidateDiversity is the min candidate-set distinct count).
func TestConstraintsOnKK(t *testing.T) {
	tbl := ART(120, 13)
	res, err := Anonymize(tbl, Options{K: 3, Notion: NotionKK,
		Constraints: []Constraint{DistinctDiversity(2)}})
	if err != nil {
		t.Fatal(err)
	}
	div, err := res.CandidateDiversity()
	if err != nil {
		t.Fatal(err)
	}
	if div < 2 {
		t.Errorf("candidate diversity %d < 2", div)
	}
}

// TestClosenessGroundAutoDetect pins the ground-metric choice: a numeric
// sensitive domain gets the ordered ground, a categorical one the equal
// ground. Observable through the EMD of a maximally skewed class — under
// the ordered ground adjacent values are cheap to move between, under the
// equal ground every value swap costs the same.
func TestClosenessGroundAutoDetect(t *testing.T) {
	mk := func(domain []string) *Table {
		tbl := loadFacadeTable(t)
		vals := make([]string, tbl.Len())
		for i := range vals {
			vals[i] = domain[i%len(domain)]
		}
		if err := tbl.SetSensitive("s", vals); err != nil {
			t.Fatal(err)
		}
		return tbl
	}
	numeric := mk([]string{"10", "20", "30", "40"})
	cc, err := Closeness(0.3).build(numeric)
	if err != nil {
		t.Fatal(err)
	}
	if got := cc.String(); !strings.Contains(got, "ordered") {
		t.Errorf("numeric domain ground = %q, want ordered", got)
	}
	categorical := mk([]string{"flu", "cold", "none"})
	cc, err = Closeness(0.3).build(categorical)
	if err != nil {
		t.Fatal(err)
	}
	if got := cc.String(); strings.Contains(got, "ordered") {
		t.Errorf("categorical domain ground = %q, want equal ground", got)
	}
}

// TestConstraintReportAbsent checks the no-constraint and trivial paths.
func TestConstraintReportAbsent(t *testing.T) {
	tbl := ART(80, 17)
	res, err := Anonymize(tbl, Options{K: 3})
	if err != nil {
		t.Fatal(err)
	}
	report, err := res.ConstraintReport()
	if err != nil || report != nil {
		t.Errorf("unconstrained run report = %v, %v; want nil, nil", report, err)
	}
	// A trivial constraint (t=1) reports satisfied without binding.
	res, err = Anonymize(tbl, Options{K: 3, Constraints: []Constraint{Closeness(1)}})
	if err != nil {
		t.Fatal(err)
	}
	report, err = res.ConstraintReport()
	if err != nil || len(report) != 1 || !report[0].Satisfied {
		t.Errorf("trivial constraint report = %+v, %v", report, err)
	}
}

// TestConstraintStringsStable pins the String() forms the CLIs and reports
// rely on.
func TestConstraintStringsStable(t *testing.T) {
	cases := map[Constraint]string{
		DistinctDiversity(3):       "distinct=3",
		EntropyDiversity(2.5):      "entropy=2.5",
		RecursiveDiversity(3, 2):   "recursive=3/2",
		Closeness(0.25):            "tclose=0.25",
		RecursiveDiversity(0.5, 4): "recursive=0.5/4",
	}
	for c, want := range cases {
		if got := fmt.Sprint(c); got != want {
			t.Errorf("String() = %q, want %q", got, want)
		}
	}
}
