package kanon

import (
	"bytes"
	"errors"
	"testing"
	"time"

	"kanon/internal/core"
	"kanon/internal/fault"
	"kanon/internal/resilient"
)

// fastRetryPolicy keeps the supervisor's backoff out of test wall time.
func fastRetryPolicy() *RetryPolicy {
	return &RetryPolicy{
		MaxAttempts:      3,
		Backoff:          10 * time.Microsecond,
		BackoffMax:       100 * time.Microsecond,
		Seed:             99,
		DegradedFallback: true,
	}
}

// resilienceCSV runs one partitioned anonymization and returns the result
// plus its serialized output bytes.
func resilienceCSV(t *testing.T, tbl *Table, opt Options) (*Result, []byte) {
	t.Helper()
	res, err := Anonymize(tbl, opt)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := res.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	return res, buf.Bytes()
}

// TestFacadeResilienceReport pins the facade surface on a fault-free run:
// a partitioned run carries a clean ResilienceReport whose totals agree
// with the resilient.* counters in Stats(), and a non-partitioned run
// carries none.
func TestFacadeResilienceReport(t *testing.T) {
	tbl := Adult(240, 11)
	res, _ := resilienceCSV(t, tbl, Options{K: 4, Notion: NotionK, MaxChunk: 64})
	rep := res.Resilience()
	if rep == nil {
		t.Fatal("partitioned run returned a nil ResilienceReport")
	}
	if !rep.Clean() {
		t.Errorf("fault-free run not clean: %+v", rep)
	}
	if len(rep.Shards) < 2 {
		t.Fatalf("expected ≥ 2 shards at MaxChunk 64 over 240 records, got %d", len(rep.Shards))
	}
	if got := res.Stats().Counter("resilient.shards"); got != int64(len(rep.Shards)) {
		t.Errorf("resilient.shards counter = %d, report has %d shards", got, len(rep.Shards))
	}
	records := 0
	for _, s := range rep.Shards {
		records += s.Records
	}
	if records != tbl.Len() {
		t.Errorf("shard records sum to %d, table has %d", records, tbl.Len())
	}

	plain, err := Anonymize(tbl, Options{K: 4, Notion: NotionK})
	if err != nil {
		t.Fatal(err)
	}
	if plain.Resilience() != nil {
		t.Error("non-partitioned run returned a ResilienceReport")
	}
}

// TestFacadeFaultedRunSafeAndByteIdentical is the acceptance scenario of
// the resilience work: with seeded faults firing at every shard site, a
// partitioned run must still complete with the full record count, produce
// output byte-identical to the fault-free run, satisfy the k-anonymity
// verifier, and score identically under the adversarial attack suite.
func TestFacadeFaultedRunSafeAndByteIdentical(t *testing.T) {
	tbl := Adult(300, 99)
	opt := Options{K: 6, Notion: NotionK, MaxChunk: 80, RetryPolicy: fastRetryPolicy()}

	_, cleanCSV := resilienceCSV(t, tbl, opt)
	cleanRes, err := Anonymize(tbl, opt)
	if err != nil {
		t.Fatal(err)
	}
	cleanAttack, err := cleanRes.AttackEvaluation(opt.K)
	if err != nil {
		t.Fatal(err)
	}

	for _, seed := range []int64{1, 2, 3} {
		in := fault.NewInjector(fault.Seeded(seed, 4, core.SitePartitionChunk, resilient.SiteShardRetry)...)
		deactivate := fault.Activate(in)
		res, faultedCSV := resilienceCSV(t, tbl, opt)
		deactivate()

		if res.Len() != tbl.Len() {
			t.Fatalf("seed %d: faulted run lost records: %d of %d", seed, res.Len(), tbl.Len())
		}
		if !bytes.Equal(faultedCSV, cleanCSV) {
			t.Errorf("seed %d: faulted output differs from the fault-free run", seed)
		}
		if rep := res.Verify(opt.K); !rep.KAnonymous {
			t.Errorf("seed %d: faulted output is not %d-anonymous: %+v", seed, opt.K, rep)
		}
		attack, err := res.AttackEvaluation(opt.K)
		if err != nil {
			t.Fatal(err)
		}
		if attack != cleanAttack {
			t.Errorf("seed %d: attack evaluation drifted under faults\n  got  %+v\n  want %+v", seed, attack, cleanAttack)
		}
		if in.Hits(core.SitePartitionChunk) == 0 {
			t.Errorf("seed %d: no faults actually fired at the shard site", seed)
		}
	}
}

// TestFacadeDegradedCompletionKeepsGuarantee drives a shard past its
// entire retry budget so it quarantines and completes on the degraded
// (reference) engine — and proves the k-guarantee and the output bytes
// survive the degradation.
func TestFacadeDegradedCompletionKeepsGuarantee(t *testing.T) {
	tbl := Adult(240, 11)
	opt := Options{K: 4, Notion: NotionK, MaxChunk: 64}
	_, cleanCSV := resilienceCSV(t, tbl, opt)

	opt.RetryPolicy = fastRetryPolicy()
	in := fault.NewInjector(
		fault.Rule{Site: core.SitePartitionChunk, Hit: 1, Action: fault.Panic},
		fault.Rule{Site: core.SitePartitionChunk, Hit: 2, Action: fault.Panic},
		fault.Rule{Site: core.SitePartitionChunk, Hit: 3, Action: fault.Panic},
	)
	deactivate := fault.Activate(in)
	res, degradedCSV := resilienceCSV(t, tbl, opt)
	deactivate()

	rep := res.Resilience()
	if rep == nil || rep.Degraded != 1 || rep.Quarantined != 1 {
		t.Fatalf("expected exactly one quarantined+degraded shard, got %+v", rep)
	}
	if out := rep.Shards[0]; !out.Degraded || out.DegradedReason == "" || out.Attempts != opt.RetryPolicy.MaxAttempts {
		t.Errorf("shard 0 outcome %+v: want degraded after %d attempts with a reason", out, opt.RetryPolicy.MaxAttempts)
	}
	if !bytes.Equal(degradedCSV, cleanCSV) {
		t.Error("degraded completion changed the output bytes")
	}
	if vr := res.Verify(opt.K); !vr.KAnonymous {
		t.Errorf("degraded output is not %d-anonymous: %+v", opt.K, vr)
	}
}

// TestFacadeNoDegradedFallbackFailsRun pins the strict mode: with
// DegradedFallback off, a quarantined shard fails the whole run instead of
// completing degraded.
func TestFacadeNoDegradedFallbackFailsRun(t *testing.T) {
	tbl := Adult(240, 11)
	rp := fastRetryPolicy()
	rp.MaxAttempts = 1
	rp.DegradedFallback = false
	in := fault.NewInjector(fault.Rule{Site: core.SitePartitionChunk, Hit: 1, Action: fault.Panic})
	deactivate := fault.Activate(in)
	defer deactivate()
	_, err := Anonymize(tbl, Options{K: 4, Notion: NotionK, MaxChunk: 64, RetryPolicy: rp})
	if err == nil {
		t.Fatal("expected the run to fail without the degraded fallback")
	}
	var se *resilient.ShardError
	if !errors.As(err, &se) {
		t.Fatalf("error %v (%T) does not unwrap to *resilient.ShardError", err, err)
	}
	if se.Shard != 0 {
		t.Errorf("failing shard = %d, want 0", se.Shard)
	}
}

// TestFacadeCheckpointResume collects shard checkpoints via OnShard and
// replays them via CompletedShards: every shard must restore as a
// checkpoint hit, and the resumed output must be byte-identical.
func TestFacadeCheckpointResume(t *testing.T) {
	tbl := Adult(240, 11)
	opt := Options{K: 4, Notion: NotionK, MaxChunk: 64}

	var collected []ShardCheckpoint
	opt.OnShard = func(ck ShardCheckpoint) { collected = append(collected, ck) }
	res, firstCSV := resilienceCSV(t, tbl, opt)
	if len(collected) != len(res.Resilience().Shards) {
		t.Fatalf("OnShard fired %d times for %d shards", len(collected), len(res.Resilience().Shards))
	}

	opt.OnShard = nil
	opt.CompletedShards = collected
	resumed, resumedCSV := resilienceCSV(t, tbl, opt)
	rep := resumed.Resilience()
	if rep.CheckpointHits != len(collected) {
		t.Errorf("CheckpointHits = %d, want %d", rep.CheckpointHits, len(collected))
	}
	for _, s := range rep.Shards {
		if !s.FromCheckpoint {
			t.Errorf("shard %d was recomputed despite a valid checkpoint", s.Shard)
		}
	}
	if !bytes.Equal(resumedCSV, firstCSV) {
		t.Error("resumed output differs from the original run")
	}

	// A parameter change invalidates the signatures: the checkpoints must
	// be ignored, not trusted into a wrong-k release.
	stale := Options{K: 5, Notion: NotionK, MaxChunk: 64, CompletedShards: collected}
	staleRes, err := Anonymize(tbl, stale)
	if err != nil {
		t.Fatal(err)
	}
	if hits := staleRes.Resilience().CheckpointHits; hits != 0 {
		t.Errorf("stale checkpoints scored %d hits, want 0", hits)
	}
	if vr := staleRes.Verify(5); !vr.KAnonymous {
		t.Errorf("run with stale checkpoints is not 5-anonymous: %+v", vr)
	}
}
