// Survey release: anonymizes the contraceptive-survey benchmark (the
// paper's CMC dataset) and studies how the choice of information-loss
// measure — entropy, LM, tree — changes the released table, plus what
// ℓ-diversity the release achieves on the survey's sensitive class.
//
//	go run ./examples/survey
package main

import (
	"fmt"
	"log"

	"kanon"

	"kanon/internal/anatomy"
)

func main() {
	const (
		n = 1473 // the real CMC size
		k = 10
	)
	tbl := kanon.CMC(n, 1987)
	fmt.Printf("survey microdata: n=%d, k=%d, sensitive attribute: contraceptive method\n\n", n, k)

	measures := []kanon.MeasureName{kanon.MeasureEntropy, kanon.MeasureLM, kanon.MeasureTree}
	fmt.Printf("%-10s %14s %14s %14s %8s\n", "optimized", "entropy-loss", "LM-loss", "tree-loss", "DM/n")
	results := make(map[kanon.MeasureName]*kanon.Result, len(measures))
	for _, m := range measures {
		res, err := kanon.Anonymize(tbl, kanon.Options{K: k, Notion: kanon.NotionKK, Measure: m})
		if err != nil {
			log.Fatalf("survey: measure %s: %v", m, err)
		}
		results[m] = res
		row := make([]float64, len(measures))
		for i, other := range measures {
			v, err := res.LossUnder(other)
			if err != nil {
				log.Fatal(err)
			}
			row[i] = v
		}
		fmt.Printf("%-10s %14.4f %14.4f %14.4f %8.1f\n",
			m, row[0], row[1], row[2], float64(res.Discernibility())/float64(n))
	}
	fmt.Println("\neach release is best under the measure it optimized — the diagonal dominates.")

	// The privacy side: ℓ-diversity of the sensitive class within groups.
	res := results[kanon.MeasureEntropy]
	fmt.Printf("\nrelease verification: %v\n", res.Verify(k))
	for l := 1; l <= 3; l++ {
		ok, err := res.IsDistinctLDiverse(l)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("distinct %d-diversity of contraceptive method: %v\n", l, ok)
	}

	// A sample of released rows with the sensitive value alongside.
	fmt.Println("\nsample rows (released public data | sensitive):")
	for i := 0; i < 5; i++ {
		fmt.Printf("  %v | %s\n", res.Row(i), tbl.SensitiveValue(i))
	}

	// The complementary design point (Xiao-Tao's Anatomy, cited in the
	// paper's related work): publish the quasi-identifiers EXACTLY and
	// bucketize the sensitive attribute instead. Perfect QI-query utility,
	// bounded sensitive inference — but zero linkage protection.
	sens := make([]int, tbl.Len())
	seen := map[string]int{}
	for i := 0; i < tbl.Len(); i++ {
		v := tbl.SensitiveValue(i)
		id, ok := seen[v]
		if !ok {
			id = len(seen)
			seen[v] = id
		}
		sens[i] = id
	}
	rel, err := anatomy.Anatomize(sens, 2)
	if err != nil {
		log.Fatal(err)
	}
	risks, err := rel.InferenceRisk(sens)
	if err != nil {
		log.Fatal(err)
	}
	maxRisk := 0.0
	for _, r := range risks {
		if r > maxRisk {
			maxRisk = r
		}
	}
	fmt.Printf("\nAnatomy alternative (l=2): %d buckets, QI loss = 0.0000 (rows exact),\n", len(rel.Buckets))
	fmt.Printf("max sensitive inference %.2f — but every row is trivially linkable,\n", maxRisk)
	fmt.Println("which is exactly the exposure the paper's k-type notions prevent.")
}
