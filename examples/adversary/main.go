// Adversary: makes the paper's Section IV-A security analysis concrete by
// attacking four releases of the same data — a bare (1,k) release (the
// paper's counterexample), a k-anonymous release, a (k,k) release and a
// global (1,k) release — with both adversaries:
//
//   - adversary 1 knows everyone's public data and counts consistent
//     released records;
//
//   - adversary 2 also knows exactly who is in the database, and discards
//     candidates that cannot occur in any consistent joint assignment
//     (perfect matching).
//
//     go run ./examples/adversary
package main

import (
	"fmt"
	"log"

	"kanon/internal/anonymity"
	"kanon/internal/attack"
	"kanon/internal/cluster"
	"kanon/internal/core"
	"kanon/internal/datagen"
	"kanon/internal/loss"
	"kanon/internal/table"
)

func main() {
	const (
		n = 200
		k = 5
	)
	ds := datagen.ART(n, 99)
	em, err := loss.NewEntropy(ds.Table, ds.Hiers)
	if err != nil {
		log.Fatal(err)
	}
	s, err := cluster.NewSpace(ds.Hiers, em)
	if err != nil {
		log.Fatal(err)
	}

	releases := []struct {
		name string
		gen  func() *table.GenTable
	}{
		{"(1,k) only (paper's counterexample)", func() *table.GenTable {
			// Keep n−k records untouched, fully suppress the last k.
			g := table.NewGen(ds.Table.Schema, n)
			for i, r := range ds.Table.Records {
				if i < n-k {
					copy(g.Records[i], s.LeafClosure(r))
				} else {
					for j := range g.Records[i] {
						g.Records[i][j] = s.Hiers[j].Root()
					}
				}
			}
			return g
		}},
		{"k-anonymity (agglomerative)", func() *table.GenTable {
			g, _, err := core.KAnonymize(s, ds.Table, core.KAnonOptions{K: k})
			if err != nil {
				log.Fatal(err)
			}
			return g
		}},
		{"(k,k)-anonymity", func() *table.GenTable {
			g, err := core.KKAnonymize(s, ds.Table, k, core.K1ByExpansion)
			if err != nil {
				log.Fatal(err)
			}
			return g
		}},
		{"global (1,k)-anonymity", func() *table.GenTable {
			g, err := core.KKAnonymize(s, ds.Table, k, core.K1ByExpansion)
			if err != nil {
				log.Fatal(err)
			}
			g, _, err = core.MakeGlobal1K(s, ds.Table, g, k)
			if err != nil {
				log.Fatal(err)
			}
			return g
		}},
	}

	fmt.Printf("attacking releases of ART (n=%d) at k=%d\n\n", n, k)
	fmt.Printf("%-38s %10s %9s %9s %9s %9s %9s\n",
		"release", "loss", "adv1<k", "adv1:exp", "adv2<k", "adv2:exp", "min adv2")
	for _, rel := range releases {
		g := rel.gen()
		outcomes, err := attack.Simulate(s, ds.Table, g, ds.Sensitive)
		if err != nil {
			log.Fatal(err)
		}
		sum := attack.Summarize(outcomes, k)
		fmt.Printf("%-38s %10.4f %9d %9d %9d %9d %9d\n",
			rel.name, loss.TableLoss(em, g),
			sum.Breaches1, sum.Exposed1, sum.Breaches2, sum.Exposed2, sum.MinCandidates2)
	}

	fmt.Println(`
reading the table:
  adv1<k    records an adversary knowing only public data links to <k rows
  adv2<k    records an adversary who also knows WHO is in the table links to <k rows
  *:exp     records whose sensitive value is disclosed (homogeneous candidates)
  the (1,k)-only release looks private to adversary 1 but collapses under
  adversary 2; (k,k) resists adversary 1 at lower loss than k-anonymity;
  global (1,k) resists both.`)

	// Cross-check with the definition-level verifiers.
	gKK := releases[2].gen()
	fmt.Println("\n(k,k) release verification:", anonymity.Check(s, ds.Table, gKK, k))

	// The even stronger adversary (Section IV-A, full version): she also
	// knows the private values of some individuals. Even the global (1,k)
	// release cannot bound her candidate sets.
	gGlobal := releases[3].gen()
	known := make([]int, 0, n/10)
	for i := 0; i < n; i += 10 {
		known = append(known, i)
	}
	counts, err := attack.SimulateInformed(s, ds.Table, gGlobal, ds.Sensitive, known)
	if err != nil {
		log.Fatal(err)
	}
	below := 0
	minC := n
	for _, c := range counts {
		if c < k {
			below++
		}
		if c < minC {
			minC = c
		}
	}
	fmt.Printf("\ninformed adversary (knows %d private values) vs the GLOBAL release:\n", len(known))
	fmt.Printf("  %d of %d records now link to fewer than k rows (min candidates %d)\n", below, n, minC)
	fmt.Println("  no k-type notion bounds an adversary with private-value knowledge —")
	fmt.Println("  that threat needs l-diversity (see Options.Diversity) or stronger.")
}
