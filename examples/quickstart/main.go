// Quickstart: anonymize a small CSV table with (k,k)-anonymity and inspect
// the result.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"os"
	"strings"

	"kanon"
)

// A toy patient register: the public (quasi-identifier) attributes only.
const patientsCSV = `age,zipcode,sex
34,68423,M
35,68423,F
36,68424,M
41,68424,F
44,68425,M
47,68425,F
29,68421,M
31,68422,F
52,68429,M
58,68429,F
61,68430,M
63,68431,F
`

// Generalization hierarchies: ages into decades, zipcodes by prefix.
// Attributes without an entry (sex) can only be kept or suppressed.
const hierarchiesJSON = `{
  "attributes": [
    {
      "attribute": "age",
      "subsets": [
        {"label": "30s", "values": ["31", "34", "35", "36"]},
        {"label": "40s", "values": ["41", "44", "47"]},
        {"label": "50s", "values": ["52", "58"]},
        {"label": "60s", "values": ["61", "63"]},
        {"label": "<50", "values": ["29", "31", "34", "35", "36", "41", "44", "47"]},
        {"label": "50+", "values": ["52", "58", "61", "63"]}
      ]
    },
    {
      "attribute": "zipcode",
      "subsets": [
        {"label": "6842x", "values": ["68421", "68422", "68423", "68424", "68425", "68429"]},
        {"label": "6843x", "values": ["68430", "68431"]}
      ]
    }
  ]
}`

func main() {
	tbl, err := kanon.LoadCSV(strings.NewReader(patientsCSV), true)
	if err != nil {
		log.Fatal(err)
	}
	if err := tbl.SetHierarchiesJSON(strings.NewReader(hierarchiesJSON)); err != nil {
		log.Fatal(err)
	}

	// (k,k)-anonymity: an adversary who knows someone's public data cannot
	// link them to fewer than k records — at lower information loss than
	// classical k-anonymity.
	const k = 3
	res, err := kanon.Anonymize(tbl, kanon.Options{K: k, Notion: kanon.NotionKK})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("original -> anonymized (k=%d, notion=(k,k), loss=%.3f bits/entry):\n\n", k, res.Loss())
	for i := 0; i < tbl.Len(); i++ {
		fmt.Printf("  %-18s ->  %s\n",
			strings.Join(tbl.Row(i), ","), strings.Join(res.Row(i), ","))
	}
	fmt.Println("\nverification:", res.Verify(k))

	// Compare with classical k-anonymity on the same data.
	resK, err := kanon.Anonymize(tbl, kanon.Options{K: k, Notion: kanon.NotionK})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nclassical %d-anonymity loses %.3f bits/entry; (k,k) saves %.1f%%\n",
		k, resK.Loss(), (resK.Loss()-res.Loss())/resK.Loss()*100)

	if err := res.WriteCSV(os.Stdout); err != nil {
		log.Fatal(err)
	}
}
