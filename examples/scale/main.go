// Scale: demonstrates the Section VII "more scalable algorithms" item —
// the partitioned agglomerative k-anonymizer — by anonymizing a census
// sample too large for comfortable O(n²) clustering and comparing runtime
// and utility against the plain agglomerative algorithm.
//
//	go run ./examples/scale [n]
package main

import (
	"fmt"
	"log"
	"os"
	"strconv"
	"time"

	"kanon"
)

func main() {
	n := 3000
	if len(os.Args) > 1 {
		var err error
		if n, err = strconv.Atoi(os.Args[1]); err != nil {
			log.Fatalf("scale: bad n %q: %v", os.Args[1], err)
		}
	}
	const k = 10
	tbl := kanon.Adult(n, 123)
	fmt.Printf("scaling comparison on Adult-like data: n=%d, k=%d\n\n", n, k)

	type variant struct {
		name string
		opt  kanon.Options
	}
	variants := []variant{
		{"agglomerative (O(n^2))", kanon.Options{K: k, Notion: kanon.NotionK}},
		{"partitioned, chunks of 800", kanon.Options{K: k, Notion: kanon.NotionK, MaxChunk: 800}},
		{"partitioned, chunks of 300", kanon.Options{K: k, Notion: kanon.NotionK, MaxChunk: 300}},
		{"partitioned, chunks of 100", kanon.Options{K: k, Notion: kanon.NotionK, MaxChunk: 100}},
	}
	fmt.Printf("%-28s %12s %14s %10s\n", "variant", "time", "loss (bits)", "k-anon")
	var base float64
	for vi, v := range variants {
		start := time.Now()
		res, err := kanon.Anonymize(tbl, v.opt)
		if err != nil {
			log.Fatalf("scale: %s: %v", v.name, err)
		}
		elapsed := time.Since(start)
		l := res.Loss()
		if vi == 0 {
			base = l
		}
		fmt.Printf("%-28s %12v %10.4f (%+.1f%%) %7v\n",
			v.name, elapsed.Round(time.Millisecond), l, (l-base)/base*100,
			res.Verify(k).KAnonymous)
	}
	fmt.Println("\nsmaller chunks cut the quadratic clustering cost at a modest utility")
	fmt.Println("penalty; the pre-partition follows the generalization hierarchies, so")
	fmt.Println("chunk boundaries fall where records already disagree.")
}
