// Hospital release: the paper's motivating scenario. A hospital publishes
// patient records whose public attributes (age, zipcode, admission ward,
// insurance) appear in outside registers, while the diagnosis must stay
// unlinkable. The example builds the table through the CSV/JSON public API,
// anonymizes with (k,k)-anonymity, and layers the ℓ-diversity check of
// Machanavajjhala et al. on the diagnosis column.
//
//	go run ./examples/hospital
package main

import (
	"fmt"
	"log"
	"math/rand"
	"strings"

	"kanon"
)

const k = 4

func main() {
	csvData, diagnoses, seenAges, seenZips := synthesizePatients(120)
	tbl, err := kanon.LoadCSV(strings.NewReader(csvData), true)
	if err != nil {
		log.Fatal(err)
	}
	if err := tbl.SetHierarchiesJSON(strings.NewReader(buildHierarchies(seenAges, seenZips))); err != nil {
		log.Fatal(err)
	}

	res, err := kanon.Anonymize(tbl, kanon.Options{K: k, Notion: kanon.NotionKK})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("hospital release: %d patients, k=%d, (k,k)-anonymity, loss=%.3f bits/entry\n\n",
		tbl.Len(), k, res.Loss())

	fmt.Println("first patients as released (diagnosis column appended unmodified):")
	for i := 0; i < 8; i++ {
		fmt.Printf("  %-34s | %s\n", strings.Join(res.Row(i), ","), diagnoses[i])
	}

	fmt.Println("\nverification:", res.Verify(k))

	// ℓ-diversity over the released groups: within every group of
	// indistinguishable patients, how many distinct diagnoses appear? A
	// group with a single diagnosis reveals it to anyone who can place an
	// acquaintance in the group, even under k-anonymity.
	groups := res.GroupSizes()
	fmt.Printf("\nrelease has %d indistinguishability groups (sizes %v ... %v)\n",
		len(groups), groups[0], groups[len(groups)-1])

	// Standard disclosure-risk metrics under each adversary model.
	fmt.Println("\nre-identification risk:")
	for _, model := range []string{"class", "neighbors", "matches"} {
		sum, err := res.Risk(model, k)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-10s journalist=%.3f marketer=%.3f at-risk=%d\n",
			model, sum.Journalist, sum.Marketer, sum.AtRisk)
	}
	diversity := diagnosisDiversity(res, diagnoses)
	for l := 1; l <= 4; l++ {
		fmt.Printf("  distinct %d-diverse: %v\n", l, diversity >= l)
	}
	if diversity < 2 {
		fmt.Println("  -> at least one group is diagnosis-homogeneous; a real release should")
		fmt.Println("     re-cluster with a diversity constraint or suppress the group.")
	}
}

// diagnosisDiversity returns the minimum number of distinct diagnoses in
// any indistinguishability group of the release.
func diagnosisDiversity(res *kanon.Result, diagnoses []string) int {
	groups := make(map[string]map[string]bool)
	for i := 0; i < res.Len(); i++ {
		key := strings.Join(res.Row(i), "|")
		if groups[key] == nil {
			groups[key] = make(map[string]bool)
		}
		groups[key][diagnoses[i]] = true
	}
	min := res.Len()
	for _, ds := range groups {
		if len(ds) < min {
			min = len(ds)
		}
	}
	return min
}

// synthesizePatients fabricates the hospital register: public attributes as
// CSV plus the private diagnosis column, and the sets of age/zipcode values
// that actually occur (the hierarchy spec may only mention occurring
// values).
func synthesizePatients(n int) (csvData string, diagnoses []string, seenAges, seenZips map[int]bool) {
	rng := rand.New(rand.NewSource(7))
	wards := []string{"cardiology", "oncology", "orthopedics", "neurology", "maternity"}
	insurers := []string{"public", "private", "none"}
	diagnosisByWard := map[string][]string{
		"cardiology":  {"arrhythmia", "infarction", "hypertension"},
		"oncology":    {"lymphoma", "melanoma", "carcinoma"},
		"orthopedics": {"fracture", "arthritis", "disc-herniation"},
		"neurology":   {"migraine", "epilepsy", "stroke"},
		"maternity":   {"delivery", "preeclampsia", "delivery"},
	}
	var b strings.Builder
	b.WriteString("age,zipcode,ward,insurance\n")
	seenAges = make(map[int]bool)
	seenZips = make(map[int]bool)
	for i := 0; i < n; i++ {
		age := 20 + rng.Intn(60) // 20..79
		zip := 10000 + 100*rng.Intn(5) + rng.Intn(4)
		seenAges[age] = true
		seenZips[zip] = true
		ward := wards[rng.Intn(len(wards))]
		ins := insurers[rng.Intn(len(insurers))]
		fmt.Fprintf(&b, "%d,%d,%s,%s\n", age, zip, ward, ins)
		opts := diagnosisByWard[ward]
		diagnoses = append(diagnoses, opts[rng.Intn(len(opts))])
	}
	return b.String(), diagnoses, seenAges, seenZips
}

// buildHierarchies groups occurring ages by decade then by 20-year span,
// occurring zipcodes by hundred-block, and wards by specialty. Groups with
// fewer than two occurring values are dropped (singletons are implicit in
// the hierarchy model).
func buildHierarchies(seenAges, seenZips map[int]bool) string {
	quoteRange := func(lo, hi int, seen map[int]bool) (string, int) {
		var vals []string
		for v := lo; v <= hi; v++ {
			if seen[v] {
				vals = append(vals, fmt.Sprintf("%q", fmt.Sprint(v)))
			}
		}
		return strings.Join(vals, ","), len(vals)
	}
	var ageSubsets []string
	dedupe := make(map[string]bool) // a 20-year group may coincide with its only populated decade
	for d := 20; d < 80; d += 10 {
		if vals, n := quoteRange(d, d+9, seenAges); n >= 2 && !dedupe[vals] {
			dedupe[vals] = true
			ageSubsets = append(ageSubsets, fmt.Sprintf(`{"label": "%ds", "values": [%s]}`, d, vals))
		}
	}
	for d := 20; d < 80; d += 20 {
		if vals, n := quoteRange(d, d+19, seenAges); n >= 2 && !dedupe[vals] {
			dedupe[vals] = true
			ageSubsets = append(ageSubsets, fmt.Sprintf(`{"label": "%d-%d", "values": [%s]}`, d, d+19, vals))
		}
	}
	var zipSubsets []string
	for block := 0; block < 5; block++ {
		if vals, n := quoteRange(10000+100*block, 10000+100*block+3, seenZips); n >= 2 {
			zipSubsets = append(zipSubsets, fmt.Sprintf(`{"label": "1%02dxx", "values": [%s]}`, block, vals))
		}
	}
	wards := `{"label": "surgical", "values": ["orthopedics", "maternity"]},
              {"label": "medical", "values": ["cardiology", "oncology", "neurology"]}`
	return fmt.Sprintf(`{"attributes": [
	  {"attribute": "age", "subsets": [%s]},
	  {"attribute": "zipcode", "subsets": [%s]},
	  {"attribute": "ward", "subsets": [%s]}
	]}`, strings.Join(ageSubsets, ","), strings.Join(zipSubsets, ","), wards)
}
