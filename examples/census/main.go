// Census release: compares all the anonymization pipelines of the paper on
// the Adult-like census benchmark — classical k-anonymity (agglomerative
// and forest baseline), (k,k)-anonymity, and global (1,k)-anonymity — and
// tells the adversarial story behind each notion.
//
//	go run ./examples/census [n]
package main

import (
	"fmt"
	"log"
	"os"
	"strconv"
	"strings"
	"time"

	"kanon"
)

func main() {
	n := 1000
	if len(os.Args) > 1 {
		var err error
		if n, err = strconv.Atoi(os.Args[1]); err != nil {
			log.Fatalf("census: bad n %q: %v", os.Args[1], err)
		}
	}
	const k = 10
	tbl := kanon.Adult(n, 42)
	fmt.Printf("census microdata release: n=%d records, %d quasi-identifiers, k=%d\n\n",
		tbl.Len(), tbl.NumAttrs(), k)
	fmt.Println("attributes:", strings.Join(tbl.AttrNames(), ", "))

	type pipeline struct {
		name  string
		opt   kanon.Options
		story string
	}
	pipelines := []pipeline{
		{"k-anonymity (agglomerative)", kanon.Options{K: k, Notion: kanon.NotionK},
			"classical guarantee: every released record identical to ≥ k-1 others"},
		{"k-anonymity (forest baseline)", kanon.Options{K: k, Notion: kanon.NotionK, Forest: true},
			"the Aggarwal et al. 3k-3 approximation the paper compares against"},
		{"(k,k)-anonymity", kanon.Options{K: k, Notion: kanon.NotionKK},
			"adversary knowing anyone's public data still sees ≥ k candidate records"},
		{"global (1,k)-anonymity", kanon.Options{K: k, Notion: kanon.NotionGlobal1K},
			"holds even if the adversary knows exactly who is in the census sample"},
	}

	fmt.Printf("\n%-32s %12s %12s %10s\n", "pipeline", "loss (bits)", "loss (LM)", "time")
	var results []*kanon.Result
	for _, p := range pipelines {
		start := time.Now()
		res, err := kanon.Anonymize(tbl, p.opt)
		if err != nil {
			log.Fatalf("census: %s: %v", p.name, err)
		}
		lm, err := res.LossUnder(kanon.MeasureLM)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-32s %12.4f %12.4f %10v\n", p.name, res.Loss(), lm, time.Since(start).Round(time.Millisecond))
		results = append(results, res)
	}

	fmt.Println("\nwhat each guarantee means:")
	for i, p := range pipelines {
		rep := results[i].Verify(k)
		fmt.Printf("  %-32s %s\n      %s\n", p.name, p.story, rep)
	}

	global := results[len(results)-1]
	st := global.Stats()
	fmt.Printf("\nglobal upgrade (Algorithm 6): %d of %d records were deficient "+
		"(min matches %d); %d widening steps repaired them (max %d per record)\n",
		st.Counter("core.global.deficient"), tbl.Len(), st.Counter("core.global.min_matches"),
		st.Counter("core.global.steps"), st.Peaks["core.global.max_steps"])

	// A data consumer's view: how large are the indistinguishability groups?
	sizes := results[2].GroupSizes()
	fmt.Printf("\n(k,k) release group sizes: %d groups, smallest %d, largest %d\n",
		len(sizes), sizes[0], sizes[len(sizes)-1])
}
