package kanon

import "testing"

// exposureGolden pins the homogeneity-exposure counts (records whose
// sensitive value an adversary learns outright) of one release, for the
// matching and intersection adversaries. The refinement adversary's
// candidate sets are too coarse to be homogeneous on these instances, so
// it carries no signal here.
type exposureGolden struct {
	Matching, Intersection int
}

// TestConstraintAttackRegression is the attack-regression gate of the
// constraint API: golden exposure numbers for plain vs constrained
// releases over fixed seeds, proving each constraint notion removes
// sensitive-value exposure rather than merely claiming to. Same update
// procedure as TestAttackRegression: nil the want pointer, run with -v,
// copy the actuals back. A Matching increase against the same-notion plain
// baseline is a privacy regression and must never be recorded.
//
// The numbers tell the API's story: on the class-enforcing engine every
// diversity constraint takes matching exposure to zero (ADT 15 → 0,
// CMC 10 → 0), while the (k,k) pipeline — whose guarantee is on candidate
// sets, not classes — only trims it (CMC 57 → 54), exactly the gap
// ConstraintReport documents.
func TestConstraintAttackRegression(t *testing.T) {
	adt := Adult(300, 99)
	cmc := CMC(200, 7)
	type tcase struct {
		name string
		tbl  *Table
		opt  Options
		want *exposureGolden // nil = bootstrap mode: log actuals
	}
	cases := []tcase{
		{"ADT-k6-plain", adt, Options{K: 6, Notion: NotionK},
			&exposureGolden{Matching: 15, Intersection: 36}},
		{"ADT-k6-distinct2", adt, Options{K: 6, Notion: NotionK,
			Constraints: []Constraint{DistinctDiversity(2)}},
			&exposureGolden{Matching: 0, Intersection: 0}},
		{"ADT-k6-entropy1.4", adt, Options{K: 6, Notion: NotionK,
			Constraints: []Constraint{EntropyDiversity(1.4)}},
			&exposureGolden{Matching: 0, Intersection: 8}},
		{"ADT-k6-tclose0.2", adt, Options{K: 6, Notion: NotionK,
			Constraints: []Constraint{Closeness(0.2)}},
			&exposureGolden{Matching: 0, Intersection: 2}},
		{"CMC-k4-plain", cmc, Options{K: 4, Notion: NotionK},
			&exposureGolden{Matching: 10, Intersection: 22}},
		{"CMC-k4-recursive4-2", cmc, Options{K: 4, Notion: NotionK,
			Constraints: []Constraint{RecursiveDiversity(4, 2)}},
			&exposureGolden{Matching: 0, Intersection: 24}},
		{"CMC-k4-kk-plain", cmc, Options{K: 4, Notion: NotionKK},
			&exposureGolden{Matching: 57, Intersection: 48}},
		{"CMC-k4-kk-distinct2", cmc, Options{K: 4, Notion: NotionKK,
			Constraints: []Constraint{DistinctDiversity(2)}},
			&exposureGolden{Matching: 54, Intersection: 47}},
	}
	type baseKey struct {
		tbl    *Table
		notion Notion
	}
	baselines := map[baseKey]exposureGolden{}
	for _, c := range cases {
		c := c
		t.Run(c.name, func(t *testing.T) {
			res, err := Anonymize(c.tbl, c.opt)
			if err != nil {
				t.Fatal(err)
			}
			sum, err := res.AttackEvaluation(c.opt.K)
			if err != nil {
				t.Fatal(err)
			}
			got := exposureGolden{
				Matching:     sum.Matching.Exposed,
				Intersection: sum.Intersection.Exposed,
			}
			key := baseKey{c.tbl, c.opt.Notion}
			if len(c.opt.Constraints) == 0 {
				baselines[key] = got
			}
			if c.want == nil {
				t.Logf("%s: %+v", c.name, got)
				return
			}
			if got != *c.want {
				t.Errorf("exposure drifted (privacy regression?)\n  got  %+v\n  want %+v", got, *c.want)
			}
			// Structural invariant, independent of the constants: against
			// the same-notion plain baseline, a constrained release never
			// exposes more to the matching adversary. (Intersection attacks
			// cross two releases, so per-release monotonicity need not hold
			// there — CMC's recursive row shows 22 → 24.)
			if base, ok := baselines[key]; ok && len(c.opt.Constraints) > 0 {
				if got.Matching > base.Matching {
					t.Errorf("constrained release exposes more than plain: %+v vs %+v", got, base)
				}
			}
		})
	}
}
